//===- tests/parallel_test.cpp --------------------------------*- C++ -*-===//
///
/// Tests for the parallel execution runtime: the thread pool, the
/// schedule partitioners (static / dynamic / triangle-balanced), the
/// parallelism analysis (disjoint writes, reduction privatization,
/// triangle detection), and a determinism suite asserting bit-identical
/// outputs across Threads in {1, 2, 4, 8} for the paper kernels on
/// exact-sum (integer-valued) data.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "observability/Trace.h"
#include "parallel/ParallelAnalysis.h"
#include "parallel/Schedule.h"
#include "parallel/ThreadPool.h"
#include "runtime/Executor.h"
#include "support/Counters.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>

using namespace systec;

namespace {
// The tsan_smoke target reruns the ThreadPool suite with
// SYSTEC_TSAN_TRACE=1: tracing stays on for the whole binary, so the
// sanitizer exercises the trace buffers' single-writer append and
// release/acquire publish protocol under real pool contention.
[[maybe_unused]] const bool TraceEnvHook = [] {
  if (std::getenv("SYSTEC_TSAN_TRACE"))
    obs::setTracingEnabled(true);
  return true;
}();
} // namespace

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool Pool(3);
  std::vector<std::atomic<int>> Hits(257);
  Pool.parallelFor(257, [&](unsigned T) { ++Hits[T]; });
  for (const std::atomic<int> &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool Pool(0);
  int64_t Sum = 0; // no atomics needed: everything runs on this thread
  Pool.parallelFor(100, [&](unsigned T) { Sum += T; });
  EXPECT_EQ(Sum, 99 * 100 / 2);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool Pool(2);
  std::atomic<int> Total{0};
  Pool.parallelFor(4, [&](unsigned) {
    // Nested batch must not deadlock; it runs on the calling thread.
    Pool.parallelFor(8, [&](unsigned) { ++Total; });
  });
  EXPECT_EQ(Total.load(), 32);
}

TEST(ThreadPool, ManySmallBatches) {
  ThreadPool Pool(4);
  std::atomic<int64_t> Sum{0};
  for (int B = 0; B < 200; ++B)
    Pool.parallelFor(5, [&](unsigned T) { Sum += T; });
  EXPECT_EQ(Sum.load(), 200 * 10);
}

TEST(ThreadPool, GrowsInPlace) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.workerCount(), 1u);
  Pool.ensureWorkers(3);
  EXPECT_EQ(Pool.workerCount(), 3u);
  Pool.ensureWorkers(2); // never shrinks
  EXPECT_EQ(Pool.workerCount(), 3u);
  std::atomic<int> Hits{0};
  Pool.parallelFor(64, [&](unsigned) { ++Hits; });
  EXPECT_EQ(Hits.load(), 64);
}

//===----------------------------------------------------------------------===//
// Schedule
//===----------------------------------------------------------------------===//

namespace {

void expectTiles(const std::vector<ChunkRange> &Chunks, int64_t Lo,
                 int64_t Hi) {
  ASSERT_FALSE(Chunks.empty());
  EXPECT_EQ(Chunks.front().Lo, Lo);
  EXPECT_EQ(Chunks.back().Hi, Hi);
  for (size_t K = 0; K < Chunks.size(); ++K) {
    EXPECT_LE(Chunks[K].Lo, Chunks[K].Hi) << "chunk " << K << " empty";
    if (K)
      EXPECT_EQ(Chunks[K].Lo, Chunks[K - 1].Hi + 1);
  }
}

} // namespace

TEST(Schedule, StaticBlocksTileTheRange) {
  auto Chunks = staticBlocks(0, 99, 4);
  ASSERT_EQ(Chunks.size(), 4u);
  expectTiles(Chunks, 0, 99);
  for (const ChunkRange &C : Chunks)
    EXPECT_EQ(C.Hi - C.Lo + 1, 25);
}

TEST(Schedule, StaticBlocksClampToRangeSize) {
  auto Chunks = staticBlocks(5, 7, 8);
  ASSERT_EQ(Chunks.size(), 3u);
  expectTiles(Chunks, 5, 7);
}

TEST(Schedule, DynamicChunksOversubscribe) {
  auto Chunks = dynamicChunks(0, 999, 4, 4);
  EXPECT_EQ(Chunks.size(), 16u);
  expectTiles(Chunks, 0, 999);
}

TEST(Schedule, TriangleBalancedEqualizesAscendingWork) {
  // Work under coordinate v is proportional to v + 1 (inner loop runs
  // to v): triangle chunks must carry near-equal weight while static
  // blocks differ by ~2x between first and last.
  const int64_t N = 10000;
  auto Tri = triangleBalanced(0, N - 1, 8, /*TriDepth=*/1);
  ASSERT_EQ(Tri.size(), 8u);
  expectTiles(Tri, 0, N - 1);
  double MinW = 1e300, MaxW = 0;
  for (const ChunkRange &C : Tri) {
    double W = triangleWeight(C, 0, N - 1, 1);
    MinW = std::min(MinW, W);
    MaxW = std::max(MaxW, W);
  }
  EXPECT_LT(MaxW / MinW, 1.2) << "triangle chunks should be balanced";
  // Ascending work => the first chunk spans more coordinates than the
  // last.
  EXPECT_GT(Tri.front().Hi - Tri.front().Lo,
            4 * (Tri.back().Hi - Tri.back().Lo));

  auto Static = staticBlocks(0, N - 1, 8);
  double FirstW = triangleWeight(Static.front(), 0, N - 1, 1);
  double LastW = triangleWeight(Static.back(), 0, N - 1, 1);
  EXPECT_GT(LastW / FirstW, 5.0) << "static blocks are imbalanced here";
}

TEST(Schedule, TriangleBalancedDescending) {
  auto Tri = triangleBalanced(0, 9999, 8, /*TriDepth=*/-1);
  ASSERT_EQ(Tri.size(), 8u);
  expectTiles(Tri, 0, 9999);
  double MinW = 1e300, MaxW = 0;
  for (const ChunkRange &C : Tri) {
    double W = triangleWeight(C, 0, 9999, -1);
    MinW = std::min(MinW, W);
    MaxW = std::max(MaxW, W);
  }
  EXPECT_LT(MaxW / MinW, 1.2);
  // Descending work => wide chunks cover the light high end.
  EXPECT_GT(Tri.back().Hi - Tri.back().Lo,
            4 * (Tri.front().Hi - Tri.front().Lo));
}

TEST(Schedule, TriangleDepthTwo) {
  auto Tri = triangleBalanced(0, 4999, 6, /*TriDepth=*/2);
  ASSERT_EQ(Tri.size(), 6u);
  expectTiles(Tri, 0, 4999);
  double MinW = 1e300, MaxW = 0;
  for (const ChunkRange &C : Tri) {
    double W = triangleWeight(C, 0, 4999, 2);
    MinW = std::min(MinW, W);
    MaxW = std::max(MaxW, W);
  }
  EXPECT_LT(MaxW / MinW, 1.35);
}

TEST(Schedule, DegenerateRanges) {
  EXPECT_TRUE(staticBlocks(3, 2, 4).empty());
  auto One = triangleBalanced(7, 7, 8, 1);
  ASSERT_EQ(One.size(), 1u);
  EXPECT_EQ(One[0].Lo, 7);
  EXPECT_EQ(One[0].Hi, 7);
}

//===----------------------------------------------------------------------===//
// ParallelAnalysis
//===----------------------------------------------------------------------===//

namespace {

/// Outermost loops of a (possibly multi-nest) body.
std::vector<StmtPtr> topLoops(const StmtPtr &Body) {
  std::vector<StmtPtr> Out;
  if (Body->kind() == StmtKind::Loop) {
    Out.push_back(Body);
  } else if (Body->kind() == StmtKind::Block) {
    for (const StmtPtr &C : Body->stmts())
      if (C->kind() == StmtKind::Loop)
        Out.push_back(C);
  }
  return Out;
}

} // namespace

TEST(ParallelAnalysis, SsymvOuterLoopsPrivatizeOutput) {
  CompileResult R = compileEinsum(makeSsymv());
  std::vector<StmtPtr> Nests = topLoops(R.Optimized.Body);
  ASSERT_GE(Nests.size(), 1u);
  for (const StmtPtr &L : Nests) {
    EXPECT_TRUE(L->parallelInfo().IsParallel);
    LoopParallelism LP = analyzeLoopParallelism(L);
    EXPECT_TRUE(LP.Safe);
    // y[i] is written under the j loop: reduction privatization.
    ASSERT_TRUE(LP.TensorMergeOps.count("y"));
    EXPECT_EQ(LP.TensorMergeOps.at("y"), OpKind::Add);
  }
  // The off-diagonal nest iterates the strict triangle i < j.
  EXPECT_EQ(Nests[0]->parallelInfo().TriangleDepth, 1);
}

TEST(ParallelAnalysis, SsyrkOuterLoopPrivatizesAndInnerIsDisjoint) {
  CompileResult R = compileEinsum(makeSsyrk());
  std::vector<StmtPtr> Nests = topLoops(R.Optimized.Body);
  // Off-diagonal (i < j) and diagonal (i == j) nests.
  ASSERT_GE(Nests.size(), 1u);
  for (const StmtPtr &K : Nests) {
    ASSERT_TRUE(K->parallelInfo().IsParallel);
    LoopParallelism LPk = analyzeLoopParallelism(K);
    EXPECT_TRUE(LPk.TensorMergeOps.count("C"));

    // Walk to the j loop under k: its writes carry j, so no
    // accumulators are needed at that level.
    StmtPtr Cur = K->body();
    while (Cur->kind() != StmtKind::Loop) {
      ASSERT_TRUE(Cur->kind() == StmtKind::Block ||
                  Cur->kind() == StmtKind::If);
      Cur = Cur->kind() == StmtKind::Block ? Cur->stmts()[0] : Cur->body();
    }
    EXPECT_TRUE(Cur->parallelInfo().IsParallel);
    LoopParallelism LPj = analyzeLoopParallelism(Cur);
    EXPECT_TRUE(LPj.Safe);
    EXPECT_FALSE(LPj.needsPrivatization());
    ASSERT_TRUE(LPj.Tensors.count("C"));
    EXPECT_EQ(LPj.Tensors.at("C"), WriteClass::Disjoint);
  }
}

TEST(ParallelAnalysis, MinReductionPrivatizesWithMin) {
  CompileResult R = compileEinsum(makeBellmanFord());
  for (const StmtPtr &L : topLoops(R.Optimized.Body)) {
    LoopParallelism LP = analyzeLoopParallelism(L);
    ASSERT_TRUE(LP.Safe);
    ASSERT_TRUE(LP.TensorMergeOps.count("y"));
    EXPECT_EQ(LP.TensorMergeOps.at("y"), OpKind::Min);
  }
}

TEST(ParallelAnalysis, ScalarWorkspaceDefinedOutsideIsPrivatized) {
  // { w = 0; for i: w += A[i,j]; y[j] += w } analyzed at the i loop:
  // w's definition is outside the loop body, so it must merge.
  StmtPtr Loop = Stmt::loop(
      "i", Stmt::assign(Expr::scalar("w"), OpKind::Add,
                        Expr::access("A", {"i", "j"})));
  LoopParallelism LP = analyzeLoopParallelism(Loop);
  ASSERT_TRUE(LP.Safe);
  ASSERT_TRUE(LP.ScalarMergeOps.count("w"));
  EXPECT_EQ(LP.ScalarMergeOps.at("w"), OpKind::Add);
}

TEST(ParallelAnalysis, SharedOverwriteIsRejected) {
  // for i: y[0-d] = A[i]  — last writer wins; not parallelizable.
  StmtPtr Loop = Stmt::loop(
      "i", Stmt::assign(Expr::access("y", {}), std::nullopt,
                        Expr::access("A", {"i"})));
  EXPECT_FALSE(analyzeLoopParallelism(Loop).Safe);
}

TEST(ParallelAnalysis, ReadOfWrittenTensorIsRejected) {
  // for i: y[i] += y[i-ish read through other index] — conservative no.
  StmtPtr Loop = Stmt::loop(
      "i", Stmt::assign(Expr::access("y", {"i"}), OpKind::Add,
                        Expr::access("y", {"j"})));
  EXPECT_FALSE(analyzeLoopParallelism(Loop).Safe);
}

TEST(ParallelAnalysis, DisjointOverwriteIsAllowed) {
  StmtPtr Loop = Stmt::loop(
      "i", Stmt::assign(Expr::access("y", {"i"}), std::nullopt,
                        Expr::access("A", {"i"})));
  LoopParallelism LP = analyzeLoopParallelism(Loop);
  EXPECT_TRUE(LP.Safe);
  EXPECT_FALSE(LP.needsPrivatization());
}

TEST(ParallelAnalysis, PipelineSwitchDisablesAnnotationEverywhere) {
  PipelineOptions Opt;
  Opt.Parallelize = false;
  CompileResult R = compileEinsum(makeSsymv(), Opt);
  for (const Kernel *K : {&R.Naive, &R.Optimized})
    for (const StmtPtr &L : topLoops(K->Body))
      EXPECT_FALSE(L->parallelInfo().IsParallel) << K->Name;
}

TEST(ParallelAnalysis, AnnotationSurvivesRenames) {
  CompileResult R = compileEinsum(makeSsymv());
  StmtPtr Renamed = Stmt::renameIndices(
      R.Optimized.Body, [](const std::string &N) { return N + "_r"; });
  std::vector<StmtPtr> Nests = topLoops(Renamed);
  ASSERT_GE(Nests.size(), 1u);
  EXPECT_TRUE(Nests[0]->parallelInfo().IsParallel);
}

TEST(ParallelAnalysis, EqualityIgnoresAnnotation) {
  StmtPtr A = Stmt::loop("i", Stmt::assign(Expr::access("y", {"i"}),
                                           OpKind::Add, Expr::lit(1)));
  StmtPtr B = A->withParallel(ParallelAnnotation{true, 1});
  EXPECT_TRUE(Stmt::equal(A, B));
}

//===----------------------------------------------------------------------===//
// Determinism suite
//===----------------------------------------------------------------------===//

namespace {

/// Quantizes stored values to small integers so every reduction order
/// produces the same (exactly representable) sums: the bit-identical
/// check below is then meaningful for privatized Add merges.
void quantize(Tensor &T) {
  for (double &V : T.vals())
    if (std::isfinite(V))
      V = std::floor(V * 16.0);
}

struct DetCase {
  std::string Name;
  Einsum E;
  std::map<std::string, Tensor> Inputs;
  std::vector<int64_t> OutDims;
  double OutInit = 0.0;
};

std::vector<DetCase> determinismCases() {
  std::vector<DetCase> Cases;
  Rng R(20260731);
  const int64_t N = 150;

  {
    DetCase C{"ssymv", makeSsymv(), {}, {N}, 0.0};
    C.Inputs.emplace("A", generateSymmetricTensor(2, N, 5 * N, R,
                                                  TensorFormat::csf(2)));
    C.Inputs.emplace("x", generateDenseVector(N, R));
    Cases.push_back(std::move(C));
  }
  {
    DetCase C{"ssyrk", makeSsyrk(), {}, {N, N}, 0.0};
    C.Inputs.emplace("A", generateSparseMatrix(N, N, 6 * N, R,
                                               TensorFormat::csf(2)));
    Cases.push_back(std::move(C));
  }
  {
    const int64_t Dim = 40, Rank = 8;
    DetCase C{"mttkrp3", makeMttkrp(3), {}, {Dim, Rank}, 0.0};
    C.Inputs.emplace("A", generateSymmetricTensor(3, Dim, 300, R,
                                                  TensorFormat::csf(3)));
    C.Inputs.emplace("B", generateDenseMatrix(Dim, Rank, R));
    Cases.push_back(std::move(C));
  }
  for (DetCase &C : Cases)
    for (auto &[Name, T] : C.Inputs)
      quantize(T);
  return Cases;
}

Tensor runKernel(const Kernel &K, DetCase &C, const ExecOptions &O) {
  Tensor Out = Tensor::dense(C.OutDims, 0.0);
  Out.setAllValues(C.OutInit);
  Executor E(K, O);
  for (auto &[Name, T] : C.Inputs)
    E.bind(Name, &T);
  E.bind(C.E.Output->tensorName(), &Out);
  E.prepare();
  E.run();
  return Out;
}

} // namespace

TEST(Determinism, BitIdenticalAcrossThreadCounts) {
  for (DetCase &C : determinismCases()) {
    CompileResult R = compileEinsum(C.E);
    for (const Kernel *K : {&R.Naive, &R.Optimized}) {
      ExecOptions Base;
      Tensor Ref = runKernel(*K, C, Base);
      for (unsigned Threads : {2u, 4u, 8u})
        for (SchedulePolicy P :
             {SchedulePolicy::Auto, SchedulePolicy::Static,
              SchedulePolicy::Dynamic, SchedulePolicy::TriangleBalanced}) {
          ExecOptions O;
          O.Threads = Threads;
          O.Schedule = P;
          Tensor Out = runKernel(*K, C, O);
          EXPECT_EQ(Tensor::maxAbsDiff(Ref, Out), 0.0)
              << C.Name << " kernel " << K->Name << " threads " << Threads
              << " schedule " << schedulePolicyName(P);
        }
    }
  }
}

TEST(Determinism, RepeatedRunsAreStable) {
  // Same (Threads, Schedule) twice on one executor: identical results
  // even under dynamic scheduling (accumulators are task-indexed, not
  // thread-indexed).
  DetCase C = std::move(determinismCases()[0]);
  CompileResult R = compileEinsum(C.E);
  ExecOptions O;
  O.Threads = 4;
  O.Schedule = SchedulePolicy::Dynamic;
  Tensor A = runKernel(R.Optimized, C, O);
  Tensor B = runKernel(R.Optimized, C, O);
  EXPECT_EQ(Tensor::maxAbsDiff(A, B), 0.0);
}

TEST(Determinism, RealValuedWithinTolerance) {
  // Uniform real values: parallel merge reorders additions, so allow
  // rounding-level drift relative to the sequential run.
  Rng R(99);
  const int64_t N = 200;
  Tensor A = generateSymmetricTensor(2, N, 6 * N, R, TensorFormat::csf(2));
  Tensor X = generateDenseVector(N, R);
  CompileResult C = compileEinsum(makeSsymv());
  Tensor Ref = Tensor::dense({N});
  {
    Executor E(C.Optimized);
    E.bind("A", &A).bind("x", &X).bind("y", &Ref);
    E.prepare();
    E.run();
  }
  for (unsigned Threads : {2u, 8u}) {
    Tensor Y = Tensor::dense({N});
    ExecOptions O;
    O.Threads = Threads;
    Executor E(C.Optimized, O);
    E.bind("A", &A).bind("x", &X).bind("y", &Y);
    E.prepare();
    E.run();
    EXPECT_LE(Tensor::maxAbsDiff(Ref, Y), 1e-10);
  }
}

TEST(Determinism, PrivatizationBudgetFallbackStaysCorrect) {
  // A budget too small for ssyrk's dense C forces the executor off the
  // outer (privatizing) k loop onto the inner disjoint j loop.
  DetCase C = std::move(determinismCases()[1]);
  ASSERT_EQ(C.Name, "ssyrk");
  CompileResult R = compileEinsum(C.E);
  ExecOptions Base;
  Tensor Ref = runKernel(R.Optimized, C, Base);
  ExecOptions O;
  O.Threads = 4;
  O.PrivatizationBudget = 1024; // << N*N elements
  Tensor Out = runKernel(R.Optimized, C, O);
  EXPECT_EQ(Tensor::maxAbsDiff(Ref, Out), 0.0);
}

//===----------------------------------------------------------------------===//
// Runtime integration
//===----------------------------------------------------------------------===//

TEST(ParallelRuntime, CountersStayExact) {
  DetCase C = std::move(determinismCases()[0]);
  CompileResult R = compileEinsum(C.E);
  setCountersEnabled(true);
  counters().reset();
  runKernel(R.Optimized, C, ExecOptions());
  CounterSnapshot Seq = counters().snapshot();
  ExecOptions O;
  O.Threads = 8;
  counters().reset();
  runKernel(R.Optimized, C, O);
  CounterSnapshot Par = counters().snapshot();
  EXPECT_EQ(Seq.SparseReads, Par.SparseReads);
  EXPECT_EQ(Seq.ScalarOps, Par.ScalarOps);
  EXPECT_EQ(Seq.Reductions, Par.Reductions);
  EXPECT_EQ(Seq.OutputWrites, Par.OutputWrites);
}

TEST(ParallelRuntime, SparseTopLevelWalkerSplits) {
  // A loop driven by a top-level Sparse walker: chunks gallop to their
  // start coordinate (the range-splitting iterator).
  Kernel K;
  K.Name = "sparsesum";
  K.LoopOrder = {"i"};
  K.OutputName = "y";
  K.Body = Stmt::loop("i", Stmt::assign(Expr::access("y", {}), OpKind::Add,
                                        Expr::access("r", {"i"})))
               ->withParallel(ParallelAnnotation{true, 0});
  Coo Entries({1000});
  double Total = 0;
  for (int64_t I = 3; I < 1000; I += 7) {
    Entries.add({I}, static_cast<double>(I % 13));
    Total += I % 13;
  }
  TensorFormat F;
  F.Levels = {LevelKind::Sparse};
  Tensor Rt = Tensor::fromCoo(std::move(Entries), F);
  for (unsigned Threads : {1u, 4u}) {
    Tensor Y = Tensor::dense({1});
    ExecOptions O;
    O.Threads = Threads;
    Executor E(K, O);
    E.bind("r", &Rt).bind("y", &Y);
    E.prepare();
    E.run();
    EXPECT_EQ(Y.at({0}), Total) << "threads " << Threads;
  }
}

TEST(ParallelRuntime, ThreadsOneMatchesAnnotatedPlan) {
  // Threads=1 must not allocate accumulators or touch the pool.
  DetCase C = std::move(determinismCases()[0]);
  CompileResult R = compileEinsum(C.E);
  ExecOptions O;
  O.Threads = 1;
  O.Schedule = SchedulePolicy::TriangleBalanced;
  Tensor A = runKernel(R.Optimized, C, O);
  Tensor B = runKernel(R.Optimized, C, ExecOptions());
  EXPECT_EQ(Tensor::maxAbsDiff(A, B), 0.0);
}

//===----------------------------------------------------------------------===//
// Parallel replication epilogue
//===----------------------------------------------------------------------===//

TEST(ParallelRuntime, ReplicateSymmetricDeterministicAcrossThreads) {
  // The replication epilogue splits the outer mode across the pool.
  // Writes hit only non-canonical coordinates and reads only canonical
  // ones, so every thread count must produce bit-identical tensors and
  // the same copy count.
  Rng R(31415);
  for (unsigned Order : {2u, 3u}) {
    const int64_t Dim = Order == 2 ? 37 : 13;
    std::vector<int64_t> Dims(Order, Dim);
    Tensor Base = Tensor::dense(Dims);
    for (double &V : Base.vals())
      V = R.nextDouble();
    Partition Sym = Partition::full(Order);

    Tensor Seq = Base;
    const uint64_t SeqCopies = replicateSymmetric(Seq, Sym, 1);
    EXPECT_GT(SeqCopies, 0u);
    for (unsigned Threads : {2u, 4u, 8u}) {
      Tensor Par = Base;
      const uint64_t ParCopies = replicateSymmetric(Par, Sym, Threads);
      EXPECT_EQ(SeqCopies, ParCopies) << "threads " << Threads;
      ASSERT_EQ(Seq.vals().size(), Par.vals().size());
      for (size_t I = 0; I < Seq.vals().size(); ++I)
        EXPECT_EQ(Seq.vals()[I], Par.vals()[I])
            << "threads " << Threads << " element " << I;
    }
  }
}

TEST(ParallelRuntime, ReplicateEpilogueThreadedViaExecutor) {
  // End to end: ssyrk's replication epilogue runs threaded when the
  // executor is parallel, with the same result and OutputWrites count.
  // Integer-valued data keeps the body's privatized sums exact, so the
  // whole run (body + epilogue) is bit-identical across thread counts.
  Rng R(2718);
  CompileResult C = compileEinsum(makeSsyrk());
  Tensor A = generateSymmetricTensor(2, 30, 120, R, TensorFormat::csf(2));
  for (double &V : A.vals())
    V = std::floor(V * 8);
  Tensor Seq = Tensor::dense({30, 30});
  CounterSnapshot SeqSnap, ParSnap;
  {
    Executor E(C.Optimized);
    E.bind("A", &A).bind("C", &Seq);
    E.prepare();
    counters().reset();
    E.run();
    SeqSnap = counters().snapshot();
  }
  for (unsigned Threads : {2u, 4u}) {
    Tensor Par = Tensor::dense({30, 30});
    ExecOptions O;
    O.Threads = Threads;
    Executor E(C.Optimized, O);
    E.bind("A", &A).bind("C", &Par);
    E.prepare();
    counters().reset();
    E.run();
    ParSnap = counters().snapshot();
    EXPECT_EQ(SeqSnap.OutputWrites, ParSnap.OutputWrites)
        << "threads " << Threads;
    EXPECT_EQ(Tensor::maxAbsDiff(Seq, Par), 0.0) << "threads " << Threads;
  }
}

//===----------------------------------------------------------------------===//
// ExecOptions sanitization (docs/ROBUSTNESS.md): absurd-but-runnable
// values clamp with a recorded note; genuinely meaningless ones are a
// typed InvalidOptions error from tryPrepare.
//===----------------------------------------------------------------------===//

namespace {
/// One prepared-ready ssyrk setup shared by the sanitization tests.
struct SanitizeSetup {
  CompileResult C = compileEinsum(makeSsyrk());
  Tensor A, Out;
  SanitizeSetup() : Out(Tensor::dense({12, 12})) {
    Rng R(99);
    A = generateSymmetricTensor(2, 12, 40, R, TensorFormat::csf(2));
  }
  void bindInto(Executor &E) { E.bind("A", &A).bind("C", &Out); }
};

bool anyClampContains(const Executor &E, const std::string &Needle) {
  for (const std::string &Note : E.optionClamps())
    if (Note.find(Needle) != std::string::npos)
      return true;
  return false;
}
} // namespace

TEST(ExecOptionsSanitize, ZeroThreadsClampsToOneAndRuns) {
  SanitizeSetup S;
  ExecOptions O;
  O.Threads = 0;
  Executor E(S.C.Optimized, O);
  S.bindInto(E);
  ASSERT_TRUE(E.tryPrepare().ok());
  EXPECT_TRUE(anyClampContains(E, "threads 0 -> 1")) << "no clamp recorded";
  EXPECT_TRUE(E.tryRun().ok());
}

TEST(ExecOptionsSanitize, AbsurdThreadCountClampsToHardwareMultiple) {
  SanitizeSetup S;
  ExecOptions O;
  O.Threads = 1u << 20; // a million lanes: oversubscription, not an error
  Executor E(S.C.Optimized, O);
  S.bindInto(E);
  ASSERT_TRUE(E.tryPrepare().ok());
  EXPECT_TRUE(anyClampContains(E, "4x hardware concurrency"));
  EXPECT_TRUE(E.tryRun().ok());
}

TEST(ExecOptionsSanitize, OversizedBlockWidthClampsToEngineMaximum) {
  SanitizeSetup S;
  ExecOptions O;
  O.EnableMicroKernels = true;
  O.EnableBlocking = true;
  O.BlockWidth = 4096;
  Executor E(S.C.Optimized, O);
  S.bindInto(E);
  ASSERT_TRUE(E.tryPrepare().ok());
  EXPECT_TRUE(anyClampContains(E, "blockwidth 4096 -> 8"));
  EXPECT_TRUE(E.tryRun().ok());
}

TEST(ExecOptionsSanitize, SupportedValuesRecordNoClamps) {
  // Widths 1..8 and any Threads up to 4x hardware concurrency are part
  // of the supported contract (the fuzz matrix samples them); none may
  // produce a note.
  SanitizeSetup S;
  ExecOptions O;
  O.Threads = 4;
  O.EnableMicroKernels = true;
  O.EnableBlocking = true;
  O.BlockWidth = 8;
  Executor E(S.C.Optimized, O);
  S.bindInto(E);
  ASSERT_TRUE(E.tryPrepare().ok());
  EXPECT_TRUE(E.optionClamps().empty());
}

TEST(ExecOptionsSanitize, NegativeDeadlineIsInvalidOptions) {
  // A negative deadline has no sane clamp (0 means "no deadline", so
  // clamping would silently drop the caller's intent): typed error.
  SanitizeSetup S;
  ExecOptions O;
  O.DeadlineMs = -5;
  Executor E(S.C.Optimized, O);
  S.bindInto(E);
  Status St = E.tryPrepare();
  ASSERT_FALSE(St.ok());
  EXPECT_EQ(St.code(), ErrCode::InvalidOptions);
  EXPECT_NE(St.str().find("DeadlineMs"), std::string::npos) << St.str();
}
