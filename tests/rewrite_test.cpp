//===- tests/rewrite_test.cpp ---------------------------------*- C++ -*-===//
///
/// Tests for the term-rewriting framework (the RewriteTools.jl
/// analogue): slot matching, rules, traversal combinators, and
/// algebraic simplification.
///
//===----------------------------------------------------------------------===//

#include "rewrite/Rewrite.h"

#include <gtest/gtest.h>

using namespace systec;

namespace {

ExprPtr slot(const char *Name) { return Expr::scalar(Name); }

} // namespace

TEST(Match, SlotBindsAnything) {
  MatchBindings B;
  EXPECT_TRUE(matchExpr(slot("$x"), Expr::access("A", {"i"}), B));
  EXPECT_EQ(B["$x"]->str(), "A[i]");
}

TEST(Match, SlotConsistency) {
  // $x * $x only matches squares.
  ExprPtr Pat = Expr::call(OpKind::Mul, {slot("$x"), slot("$x")});
  MatchBindings B1;
  EXPECT_TRUE(matchExpr(
      Pat,
      Expr::call(OpKind::Mul,
                 {Expr::access("x", {"i"}), Expr::access("x", {"i"})}),
      B1));
  MatchBindings B2;
  EXPECT_FALSE(matchExpr(
      Pat,
      Expr::call(OpKind::Mul,
                 {Expr::access("x", {"i"}), Expr::access("x", {"j"})}),
      B2));
}

TEST(Match, LiteralExact) {
  MatchBindings B;
  EXPECT_TRUE(matchExpr(Expr::lit(2), Expr::lit(2), B));
  EXPECT_FALSE(matchExpr(Expr::lit(2), Expr::lit(3), B));
}

TEST(Match, CommutativeReordering) {
  // Pattern 2 * $x matches x * 2 because * is commutative.
  ExprPtr Pat = Expr::call(OpKind::Mul, {Expr::lit(2), slot("$x")});
  MatchBindings B;
  EXPECT_TRUE(matchExpr(
      Pat, Expr::call(OpKind::Mul, {Expr::scalar("a"), Expr::lit(2)}), B));
  EXPECT_EQ(B["$x"]->str(), "a");
}

TEST(Match, NonCommutativeOrderMatters) {
  ExprPtr Pat = Expr::call(OpKind::Sub, {Expr::lit(0), slot("$x")});
  MatchBindings B;
  EXPECT_FALSE(matchExpr(
      Pat, Expr::call(OpKind::Sub, {Expr::scalar("a"), Expr::lit(0)}), B));
}

TEST(Match, ArityMismatch) {
  ExprPtr Pat = Expr::call(OpKind::Mul, {slot("$x"), slot("$y")});
  MatchBindings B;
  EXPECT_FALSE(matchExpr(
      Pat,
      Expr::call(OpKind::Mul,
                 {Expr::scalar("a"), Expr::scalar("b"), Expr::scalar("c")}),
      B));
}

TEST(Rule, AppliesAtRoot) {
  // x + x -> 2 * x (the distributive grouping rule, paper 4.2.7).
  Rule R{Expr::call(OpKind::Add, {slot("$x"), slot("$x")}),
         [](const MatchBindings &B) {
           return Expr::call(OpKind::Mul, {Expr::lit(2), B["$x"]});
         }};
  ExprPtr E = Expr::call(OpKind::Add, {Expr::access("a", {"i"}),
                                       Expr::access("a", {"i"})});
  auto Out = R.apply(E);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ((*Out)->str(), "2 * a[i]");
}

TEST(RuleSet, FirstMatchWins) {
  RuleSet RS;
  RS.add(slot("$x"),
         [](const MatchBindings &) { return Expr::lit(1); });
  RS.add(Expr::lit(5),
         [](const MatchBindings &) { return Expr::lit(2); });
  auto Out = RS.apply(Expr::lit(5));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ((*Out)->literalValue(), 1.0);
}

TEST(Walk, PostwalkRewritesLeavesFirst) {
  // Rewrite every access A[...] to the scalar t, bottom-up.
  Rewriter Fn = [](const ExprPtr &E) -> std::optional<ExprPtr> {
    if (E->kind() == ExprKind::Access && E->tensorName() == "A")
      return Expr::scalar("t");
    return std::nullopt;
  };
  ExprPtr E = Expr::call(OpKind::Mul, {Expr::access("A", {"i", "j"}),
                                       Expr::access("x", {"j"})});
  EXPECT_EQ(postwalk(E, Fn)->str(), "t * x[j]");
}

TEST(Walk, PrewalkStopsAtFixpointPerNode) {
  int Calls = 0;
  Rewriter Fn = [&Calls](const ExprPtr &E) -> std::optional<ExprPtr> {
    ++Calls;
    if (E->kind() == ExprKind::Literal && E->literalValue() > 0)
      return Expr::lit(E->literalValue() - 1);
    return std::nullopt;
  };
  ExprPtr Out = prewalk(Expr::lit(3), Fn);
  EXPECT_EQ(Out->literalValue(), 0.0);
}

TEST(Walk, FixpointTerminates) {
  Rewriter Fn = [](const ExprPtr &E) -> std::optional<ExprPtr> {
    // (a + a) -> 2*a anywhere.
    if (E->kind() == ExprKind::Call && E->op() == OpKind::Add &&
        E->args().size() == 2 && Expr::equal(E->args()[0], E->args()[1]))
      return Expr::call(OpKind::Mul, {Expr::lit(2), E->args()[0]});
    return std::nullopt;
  };
  ExprPtr A = Expr::scalar("a");
  ExprPtr E = Expr::call(OpKind::Add, {Expr::call(OpKind::Add, {A, A})});
  ExprPtr Out = rewriteFixpoint(E, Fn);
  EXPECT_EQ(Out->str(), "2 * a");
}

TEST(Simplify, FoldsLiterals) {
  ExprPtr E = Expr::call(OpKind::Mul, {Expr::lit(2), Expr::lit(3),
                                       Expr::scalar("a")});
  EXPECT_EQ(simplifyExpr(E)->str(), "6 * a");
}

TEST(Simplify, DropsMulIdentity) {
  ExprPtr E = Expr::call(OpKind::Mul, {Expr::lit(1), Expr::scalar("a")});
  EXPECT_EQ(simplifyExpr(E)->str(), "a");
}

TEST(Simplify, AnnihilatorKillsMul) {
  ExprPtr E = Expr::call(OpKind::Mul, {Expr::lit(0), Expr::scalar("a"),
                                       Expr::scalar("b")});
  EXPECT_EQ(simplifyExpr(E)->str(), "0");
}

TEST(Simplify, AddIdentity) {
  ExprPtr E = Expr::call(OpKind::Add, {Expr::lit(0), Expr::scalar("a")});
  EXPECT_EQ(simplifyExpr(E)->str(), "a");
}

TEST(Simplify, MinWithInfinityIdentity) {
  ExprPtr E = Expr::call(
      OpKind::Min,
      {Expr::lit(std::numeric_limits<double>::infinity()),
       Expr::scalar("a")});
  EXPECT_EQ(simplifyExpr(E)->str(), "a");
}

TEST(Simplify, AllLiteralCollapse) {
  ExprPtr E = Expr::call(OpKind::Add, {Expr::lit(2), Expr::lit(5)});
  EXPECT_EQ(simplifyExpr(E)->literalValue(), 7.0);
}

TEST(Simplify, LeavesNonCommutativeAlone) {
  ExprPtr E = Expr::call(OpKind::Sub, {Expr::scalar("a"), Expr::lit(0)});
  EXPECT_EQ(simplifyExpr(E)->str(), "a - 0");
}
