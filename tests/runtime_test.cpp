//===- tests/runtime_test.cpp ---------------------------------*- C++ -*-===//
///
/// Tests for the execution engine: dense loops, sparse walkers,
/// bound lifting (comparisons into loop bounds, paper Section 2.2),
/// residual conditions, scalar workspaces, lookup tables, replication,
/// counters, and the oracle (walker-disabled) mode.
///
//===----------------------------------------------------------------------===//

#include "ir/Kernel.h"
#include "runtime/Executor.h"
#include "support/Counters.h"
#include "support/Random.h"
#include "tensor/Tensor.h"

#include <gtest/gtest.h>

using namespace systec;

namespace {

/// A tiny CSC matrix:
///   [ 1 0 2 ]
///   [ 0 3 0 ]
///   [ 4 0 5 ]
Tensor smallCsc() {
  Coo C({3, 3});
  C.add({0, 0}, 1);
  C.add({2, 0}, 4);
  C.add({1, 1}, 3);
  C.add({0, 2}, 2);
  C.add({2, 2}, 5);
  return Tensor::fromCoo(std::move(C), TensorFormat::csf(2));
}

Tensor vec3(double A, double B, double C) {
  Tensor T = Tensor::dense({3});
  T.vals() = {A, B, C};
  return T;
}

Kernel spmvKernel() {
  Kernel K;
  K.Name = "spmv";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.ReduceOp = OpKind::Add;
  K.Decls["A"] = TensorDecl{"A", 2, TensorFormat::csf(2), 0.0,
                            Partition::none(2), false};
  K.Body = Stmt::loops(
      {"j", "i"},
      Stmt::assign(Expr::access("y", {"i"}), OpKind::Add,
                   Expr::call(OpKind::Mul, {Expr::access("A", {"i", "j"}),
                                            Expr::access("x", {"j"})})));
  return K;
}

} // namespace

TEST(Executor, SpmvWithWalker) {
  Tensor A = smallCsc();
  Tensor X = vec3(1, 2, 3);
  Tensor Y = Tensor::dense({3});
  Executor E(spmvKernel());
  E.bind("A", &A).bind("x", &X).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), 1 * 1 + 2 * 3.0);
  EXPECT_EQ(Y.at({1}), 3 * 2.0);
  EXPECT_EQ(Y.at({2}), 4 * 1 + 5 * 3.0);
}

TEST(Executor, SpmvOracleModeMatches) {
  Tensor A = smallCsc();
  Tensor X = vec3(1, 2, 3);
  Tensor Y1 = Tensor::dense({3}), Y2 = Tensor::dense({3});
  Executor E1(spmvKernel());
  E1.bind("A", &A).bind("x", &X).bind("y", &Y1);
  E1.prepare();
  E1.run();
  ExecOptions NoWalk;
  NoWalk.EnableSparseWalk = false;
  Executor E2(spmvKernel(), NoWalk);
  E2.bind("A", &A).bind("x", &X).bind("y", &Y2);
  E2.prepare();
  E2.run();
  EXPECT_EQ(Tensor::maxAbsDiff(Y1, Y2), 0.0);
}

TEST(Executor, WalkerCountsSparseReads) {
  Tensor A = smallCsc();
  Tensor X = vec3(1, 1, 1);
  Tensor Y = Tensor::dense({3});
  counters().reset();
  setCountersEnabled(true);
  Executor E(spmvKernel());
  E.bind("A", &A).bind("x", &X).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(counters().SparseReads, 5u);
  EXPECT_EQ(counters().Reductions, 5u);
}

TEST(Executor, CountersCanBeDisabled) {
  Tensor A = smallCsc();
  Tensor X = vec3(1, 1, 1);
  Tensor Y = Tensor::dense({3});
  counters().reset();
  setCountersEnabled(false);
  Executor E(spmvKernel());
  E.bind("A", &A).bind("x", &X).bind("y", &Y);
  E.prepare();
  E.run();
  setCountersEnabled(true);
  EXPECT_EQ(counters().SparseReads, 0u);
}

TEST(Executor, BoundLiftingUpperTriangle) {
  // for j, i: if i <= j: count A entries -> only upper triangle visited.
  Kernel K;
  K.Name = "tri";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loop(
      "j",
      Stmt::loop("i", Stmt::ifThen(Cond::atom(CmpKind::LE, "i", "j"),
                                   Stmt::assign(Expr::access("y", {}),
                                                OpKind::Add,
                                                Expr::access("A",
                                                             {"i", "j"})))));
  Tensor A = smallCsc();
  Tensor Y = Tensor::dense({1});
  counters().reset();
  Executor E(K);
  E.bind("A", &A).bind("y", &Y);
  E.prepare();
  E.run();
  // Upper entries: (0,0)=1, (1,1)=3, (0,2)=2, (2,2)=5 -> sum 11.
  EXPECT_EQ(Y.at({0}), 11.0);
  // The walker visited only the four upper-triangle entries.
  EXPECT_EQ(counters().SparseReads, 4u);
}

TEST(Executor, BoundLiftingDisabledStillCorrect) {
  Kernel K;
  K.Name = "tri";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loop(
      "j",
      Stmt::loop("i", Stmt::ifThen(Cond::atom(CmpKind::LE, "i", "j"),
                                   Stmt::assign(Expr::access("y", {}),
                                                OpKind::Add,
                                                Expr::access("A",
                                                             {"i", "j"})))));
  Tensor A = smallCsc();
  Tensor Y = Tensor::dense({1});
  ExecOptions NoLift;
  NoLift.EnableBoundLifting = false;
  Executor E(K, NoLift);
  E.bind("A", &A).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), 11.0);
}

TEST(Executor, EqualityPointLoop) {
  // for j, i: if i == j: y[] += A[i,j]  (trace).
  Kernel K;
  K.Name = "trace";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loop(
      "j",
      Stmt::loop("i", Stmt::ifThen(Cond::atom(CmpKind::EQ, "i", "j"),
                                   Stmt::assign(Expr::access("y", {}),
                                                OpKind::Add,
                                                Expr::access("A",
                                                             {"i", "j"})))));
  Tensor A = smallCsc();
  Tensor Y = Tensor::dense({1});
  Executor E(K);
  E.bind("A", &A).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), 1 + 3 + 5.0);
}

TEST(Executor, ConditionSinkingSafetyNet) {
  // An If wrapping the loop that binds its variable is sunk inward.
  Kernel K;
  K.Name = "sink";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loop(
      "j", Stmt::ifThen(Cond::atom(CmpKind::LE, "i", "j"),
                        Stmt::loop("i", Stmt::assign(
                                            Expr::access("y", {}),
                                            OpKind::Add,
                                            Expr::access("A", {"i", "j"})))));
  Tensor A = smallCsc();
  Tensor Y = Tensor::dense({1});
  Executor E(K);
  E.bind("A", &A).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), 11.0);
}

TEST(Executor, ScalarWorkspace) {
  // for j: w = 0; for i: w += A[i,j]; y[j] += w.
  Kernel K;
  K.Name = "colsum";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loop(
      "j",
      Stmt::block(
          {Stmt::defScalar("w", Expr::lit(0)),
           Stmt::loop("i", Stmt::assign(Expr::scalar("w"), OpKind::Add,
                                        Expr::access("A", {"i", "j"}))),
           Stmt::assign(Expr::access("y", {"j"}), OpKind::Add,
                        Expr::scalar("w"))}));
  Tensor A = smallCsc();
  Tensor Y = Tensor::dense({3});
  Executor E(K);
  E.bind("A", &A).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), 5.0);
  EXPECT_EQ(Y.at({1}), 3.0);
  EXPECT_EQ(Y.at({2}), 7.0);
}

TEST(Executor, MultiplicityAdd) {
  Kernel K;
  K.Name = "mult";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loops({"j", "i"},
                       Stmt::assign(Expr::access("y", {}), OpKind::Add,
                                    Expr::access("A", {"i", "j"}), 3));
  Tensor A = smallCsc();
  Tensor Y = Tensor::dense({1});
  Executor E(K);
  E.bind("A", &A).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), 3 * 15.0);
}

TEST(Executor, MultiplicityIdempotentCollapses) {
  // min-reduction over a fill-inf matrix (the (min, +) data model:
  // missing coordinates annihilate, so results are the same whether or
  // not the runtime walks the sparse level). Duplicate updates must
  // collapse without a scale factor.
  Kernel K;
  K.Name = "multmin";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.ReduceOp = OpKind::Min;
  K.Body = Stmt::loops({"j", "i"},
                       Stmt::assign(Expr::access("y", {}), OpKind::Min,
                                    Expr::access("A", {"i", "j"}), 2));
  Coo C({3, 3});
  C.add({0, 0}, 1);
  C.add({2, 0}, 4);
  C.add({1, 1}, 3);
  C.add({0, 2}, 2);
  C.add({2, 2}, 5);
  Tensor A = Tensor::fromCoo(std::move(C), TensorFormat::csf(2),
                             std::numeric_limits<double>::infinity());
  Tensor Y = Tensor::dense({1}, 0.0);
  Y.setAllValues(std::numeric_limits<double>::infinity());
  Executor E(K);
  E.bind("A", &A).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), 1.0);
}

TEST(Executor, LutSelectsFactor) {
  // y[] += lut[i==j](10, 100) * A[i,j]: off-diagonal entries weighted
  // 10, diagonal 100.
  Kernel K;
  K.Name = "lut";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  ExprPtr Lut = Expr::lut({CmpAtom{CmpKind::EQ, "i", "j"}}, {10, 100});
  K.Body = Stmt::loops(
      {"j", "i"},
      Stmt::assign(Expr::access("y", {}), OpKind::Add,
                   Expr::call(OpKind::Mul,
                              {Lut, Expr::access("A", {"i", "j"})})));
  Tensor A = smallCsc();
  Tensor Y = Tensor::dense({1});
  Executor E(K);
  E.bind("A", &A).bind("y", &Y);
  E.prepare();
  E.run();
  // Off-diagonal: 4 + 2 = 6; diagonal: 1 + 3 + 5 = 9.
  EXPECT_EQ(Y.at({0}), 10 * 6 + 100 * 9.0);
}

TEST(Executor, ReplicateEpilogue) {
  Kernel K;
  K.Name = "rep";
  K.LoopOrder = {};
  K.OutputName = "C";
  K.Body = Stmt::block({});
  K.Epilogue = Stmt::replicate("C", Partition::full(2));
  Tensor C = Tensor::dense({3, 3});
  C.denseRef({0, 1}) = 7;
  C.denseRef({0, 2}) = 8;
  C.denseRef({1, 2}) = 9;
  C.denseRef({1, 1}) = 4;
  Executor E(K);
  E.bind("C", &C);
  E.prepare();
  E.runEpilogue();
  EXPECT_EQ(C.at({1, 0}), 7.0);
  EXPECT_EQ(C.at({2, 0}), 8.0);
  EXPECT_EQ(C.at({2, 1}), 9.0);
  EXPECT_EQ(C.at({1, 1}), 4.0);
}

TEST(Executor, TransposeRequestMaterializes) {
  Kernel K = spmvKernel();
  // Rewrite to use the transposed alias: A_T[j,i] with loops i outer.
  K.Name = "spmv_t";
  K.LoopOrder = {"i", "j"};
  K.Body = Stmt::loops(
      {"i", "j"},
      Stmt::assign(Expr::access("y", {"i"}), OpKind::Add,
                   Expr::call(OpKind::Mul, {Expr::access("A_T", {"j", "i"}),
                                            Expr::access("x", {"j"})})));
  K.Transposes.push_back(TransposeRequest{"A_T", "A", {1, 0}});
  K.Decls["A_T"] = TensorDecl{"A_T", 2, TensorFormat::csf(2), 0.0,
                              Partition::none(2), false};
  Tensor A = smallCsc();
  Tensor X = vec3(1, 2, 3);
  Tensor Y = Tensor::dense({3});
  Executor E(K);
  E.bind("A", &A).bind("x", &X).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), 7.0);
  EXPECT_EQ(Y.at({1}), 6.0);
  EXPECT_EQ(Y.at({2}), 19.0);
}

TEST(Executor, SplitRequestMaterializes) {
  Kernel K;
  K.Name = "diagsum";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Decls["A"] = TensorDecl{"A", 2, TensorFormat::csf(2), 0.0,
                            Partition::full(2), false};
  K.Splits.push_back(SplitRequest{"A_diag", "A", true});
  K.Splits.push_back(SplitRequest{"A_nondiag", "A", false});
  K.Body = Stmt::block(
      {Stmt::loops({"j", "i"},
                   Stmt::assign(Expr::access("y", {}), OpKind::Add,
                                Expr::access("A_diag", {"i", "j"}))),
       Stmt::loops({"j", "i"},
                   Stmt::assign(Expr::access("y", {}), OpKind::Add,
                                Expr::call(OpKind::Mul,
                                           {Expr::lit(100),
                                            Expr::access("A_nondiag",
                                                         {"i", "j"})})))});
  Tensor A = smallCsc();
  Tensor Y = Tensor::dense({1});
  Executor E(K);
  E.bind("A", &A).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), 9.0 + 100 * 6.0);
}

TEST(Executor, TwoWalkersIntersect) {
  // y[] += A[i,j] * B[i,j]: both sparse, co-iterated.
  Kernel K;
  K.Name = "dot";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loops(
      {"j", "i"},
      Stmt::assign(Expr::access("y", {}), OpKind::Add,
                   Expr::call(OpKind::Mul, {Expr::access("A", {"i", "j"}),
                                            Expr::access("B", {"i", "j"})})));
  Tensor A = smallCsc();
  Coo CB({3, 3});
  CB.add({0, 0}, 10); // overlaps A(0,0)=1
  CB.add({1, 0}, 99); // no overlap
  CB.add({2, 2}, 2);  // overlaps A(2,2)=5
  Tensor B = Tensor::fromCoo(std::move(CB), TensorFormat::csf(2));
  Tensor Y = Tensor::dense({1});
  Executor E(K);
  E.bind("A", &A).bind("B", &B).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), 1 * 10 + 5 * 2.0);
}

TEST(Executor, NonConcordantSparseAccessFallsBackToLocate) {
  // Loops i (outer), j (inner) with CSC A[i,j]: top level j binds
  // second -> random access per element, still correct.
  Kernel K;
  K.Name = "rowmajor";
  K.LoopOrder = {"i", "j"};
  K.OutputName = "y";
  K.Body = Stmt::loops(
      {"i", "j"},
      Stmt::assign(Expr::access("y", {"i"}), OpKind::Add,
                   Expr::call(OpKind::Mul, {Expr::access("A", {"i", "j"}),
                                            Expr::access("x", {"j"})})));
  Tensor A = smallCsc();
  Tensor X = vec3(1, 2, 3);
  Tensor Y = Tensor::dense({3});
  Executor E(K);
  E.bind("A", &A).bind("x", &X).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), 7.0);
  EXPECT_EQ(Y.at({1}), 6.0);
  EXPECT_EQ(Y.at({2}), 19.0);
}

TEST(Executor, MinPlusSemiring) {
  // y[i] min= A[i,j] + d[j] with fill = inf.
  Kernel K;
  K.Name = "bf";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.ReduceOp = OpKind::Min;
  K.Body = Stmt::loops(
      {"j", "i"},
      Stmt::assign(Expr::access("y", {"i"}), OpKind::Min,
                   Expr::call(OpKind::Add, {Expr::access("A", {"i", "j"}),
                                            Expr::access("d", {"j"})})));
  double Inf = std::numeric_limits<double>::infinity();
  Coo C({3, 3});
  C.add({1, 0}, 2.0);
  C.add({2, 1}, 1.0);
  Tensor A = Tensor::fromCoo(std::move(C), TensorFormat::csf(2), Inf);
  Tensor D = vec3(0, 10, 20);
  Tensor Y = vec3(Inf, Inf, Inf);
  Executor E(K);
  E.bind("A", &A).bind("d", &D).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), Inf);
  EXPECT_EQ(Y.at({1}), 2.0);
  EXPECT_EQ(Y.at({2}), 11.0);
}

TEST(Executor, RleInputDrivesLoop) {
  Kernel K;
  K.Name = "rlesum";
  K.LoopOrder = {"i"};
  K.OutputName = "y";
  K.Body = Stmt::loop("i", Stmt::assign(Expr::access("y", {}), OpKind::Add,
                                        Expr::access("r", {"i"})));
  Coo C({6});
  C.add({1}, 2.0);
  C.add({2}, 2.0);
  C.add({4}, 7.0);
  TensorFormat F;
  F.Levels = {LevelKind::RunLength};
  Tensor Rle = Tensor::fromCoo(std::move(C), F);
  Tensor Y = Tensor::dense({1});
  Executor E(K);
  E.bind("r", &Rle).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), 11.0);
}

TEST(Executor, BandedInputDrivesLoop) {
  Kernel K;
  K.Name = "bandsum";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loops({"j", "i"},
                       Stmt::assign(Expr::access("y", {}), OpKind::Add,
                                    Expr::access("A", {"i", "j"})));
  Coo C({5, 5});
  double Total = 0;
  for (int64_t I = 0; I < 5; ++I) {
    C.add({I, I}, 1.0 + I);
    Total += 1.0 + I;
  }
  TensorFormat F;
  F.Levels = {LevelKind::Dense, LevelKind::Banded};
  Tensor A = Tensor::fromCoo(std::move(C), F);
  Tensor Y = Tensor::dense({1});
  Executor E(K);
  E.bind("A", &A).bind("y", &Y);
  E.prepare();
  E.run();
  EXPECT_EQ(Y.at({0}), Total);
}
