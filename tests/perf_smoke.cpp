//===- tests/perf_smoke.cpp -----------------------------------*- C++ -*-===//
///
/// CI smoke test for the runtime specialization layer: asserts — by
/// counter, not by time, so it is stable on loaded CI machines — that
/// the PlanSpecializer fires on all five paper kernels (ssymv, syprd,
/// ssyrk, ttm, mttkrp) in both naive and optimized form, and that the
/// fused engines reproduce the interpreted engines bit for bit on each.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "runtime/Executor.h"
#include "support/Counters.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace systec;

namespace {

struct SmokeCase {
  std::string Name;
  Einsum E;
  std::map<std::string, Tensor> Inputs;
  std::vector<int64_t> OutDims;
  std::string OutName;
};

std::vector<SmokeCase> makeCases() {
  Rng R(20260801);
  const int64_t N = 40, Dim3 = 14, Rank = 6;
  std::vector<SmokeCase> Cases;
  auto Mat2 = [&] {
    return generateSymmetricTensor(2, N, 4 * N, R, TensorFormat::csf(2));
  };
  auto Mat3 = [&] {
    return generateSymmetricTensor(3, Dim3, 200, R, TensorFormat::csf(3));
  };
  {
    SmokeCase C{"ssymv", makeSsymv(), {}, {N}, "y"};
    C.Inputs.emplace("A", Mat2());
    C.Inputs.emplace("x", generateDenseVector(N, R));
    Cases.push_back(std::move(C));
  }
  {
    SmokeCase C{"syprd", makeSyprd(), {}, {1}, "y"};
    C.Inputs.emplace("A", Mat2());
    C.Inputs.emplace("x", generateDenseVector(N, R));
    Cases.push_back(std::move(C));
  }
  {
    SmokeCase C{"ssyrk", makeSsyrk(), {}, {N, N}, "C"};
    C.Inputs.emplace("A", Mat2());
    Cases.push_back(std::move(C));
  }
  {
    SmokeCase C{"ttm", makeTtm(), {}, {Rank, Dim3, Dim3}, "C"};
    C.Inputs.emplace("A", Mat3());
    C.Inputs.emplace("B", generateDenseMatrix(Dim3, Rank, R));
    Cases.push_back(std::move(C));
  }
  {
    SmokeCase C{"mttkrp3", makeMttkrp(3), {}, {Dim3, Rank}, "C"};
    C.Inputs.emplace("A", Mat3());
    C.Inputs.emplace("B", generateDenseMatrix(Dim3, Rank, R));
    Cases.push_back(std::move(C));
  }
  return Cases;
}

Tensor runOnce(const Kernel &K, SmokeCase &C, bool Fused,
               MicroKernelStats &Stats) {
  ExecOptions O;
  O.EnableMicroKernels = Fused;
  Executor E(K, O);
  Tensor Out = Tensor::dense(C.OutDims);
  for (auto &[Name, T] : C.Inputs)
    E.bind(Name, &T);
  E.bind(C.OutName, &Out);
  E.prepare();
  Stats = E.microKernelStats();
  E.run();
  return Out;
}

} // namespace

TEST(PerfSmoke, SpecializerFiresOnAllPaperKernels) {
  for (SmokeCase &C : makeCases()) {
    SCOPED_TRACE(C.Name);
    CompileResult R = compileEinsum(C.E);
    for (const Kernel *K : {&R.Naive, &R.Optimized}) {
      SCOPED_TRACE(K == &R.Naive ? "naive" : "optimized");
      MicroKernelStats FusedStats, GenericStats;
      Tensor Generic = runOnce(*K, C, /*Fused=*/false, GenericStats);
      Tensor Fused = runOnce(*K, C, /*Fused=*/true, FusedStats);
      // Counter-based acceptance: the specializer must fire...
      EXPECT_GT(FusedStats.SpecializedLoops, 0u);
      EXPECT_GT(FusedStats.InnermostFused, 0u);
      EXPECT_EQ(GenericStats.SpecializedLoops, 0u);
      // ...and the fused engines must be bit-identical to the oracle.
      ASSERT_EQ(Generic.vals().size(), Fused.vals().size());
      for (size_t I = 0; I < Generic.vals().size(); ++I)
        EXPECT_EQ(Generic.vals()[I], Fused.vals()[I]) << "element " << I;
    }
  }
}

TEST(PerfSmoke, FullCoverageOnOptimizedPlans) {
  // Stronger claim worth noticing if it regresses: today the
  // specializer covers *every* loop of the five optimized paper
  // kernels (no generic fallbacks at all).
  for (SmokeCase &C : makeCases()) {
    SCOPED_TRACE(C.Name);
    CompileResult R = compileEinsum(C.E);
    MicroKernelStats Stats;
    runOnce(R.Optimized, C, /*Fused=*/true, Stats);
    EXPECT_EQ(Stats.GenericLoops, 0u);
  }
}
