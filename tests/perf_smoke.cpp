//===- tests/perf_smoke.cpp -----------------------------------*- C++ -*-===//
///
/// CI smoke test for the runtime specialization layer: asserts — by
/// counter, not by time, so it is stable on loaded CI machines — that
/// the PlanSpecializer fires on all five paper kernels (ssymv, syprd,
/// ssyrk, ttm, mttkrp) in both naive and optimized form, and that the
/// fused engines reproduce the interpreted engines bit for bit on each.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "observability/Trace.h"
#include "runtime/Executor.h"
#include "support/Counters.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace systec;

namespace {

struct SmokeCase {
  std::string Name;
  Einsum E;
  std::map<std::string, Tensor> Inputs;
  std::vector<int64_t> OutDims;
  std::string OutName;
  double OutInit = 0.0; ///< reduction identity of the kernel
};

std::vector<SmokeCase> makeCases() {
  Rng R(20260801);
  const int64_t N = 40, Dim3 = 14, Rank = 6;
  std::vector<SmokeCase> Cases;
  auto Mat2 = [&] {
    return generateSymmetricTensor(2, N, 4 * N, R, TensorFormat::csf(2));
  };
  auto Mat3 = [&] {
    return generateSymmetricTensor(3, Dim3, 200, R, TensorFormat::csf(3));
  };
  {
    SmokeCase C{"ssymv", makeSsymv(), {}, {N}, "y"};
    C.Inputs.emplace("A", Mat2());
    C.Inputs.emplace("x", generateDenseVector(N, R));
    Cases.push_back(std::move(C));
  }
  {
    SmokeCase C{"syprd", makeSyprd(), {}, {1}, "y"};
    C.Inputs.emplace("A", Mat2());
    C.Inputs.emplace("x", generateDenseVector(N, R));
    Cases.push_back(std::move(C));
  }
  {
    SmokeCase C{"ssyrk", makeSsyrk(), {}, {N, N}, "C"};
    C.Inputs.emplace("A", Mat2());
    Cases.push_back(std::move(C));
  }
  {
    SmokeCase C{"ttm", makeTtm(), {}, {Rank, Dim3, Dim3}, "C"};
    C.Inputs.emplace("A", Mat3());
    C.Inputs.emplace("B", generateDenseMatrix(Dim3, Rank, R));
    Cases.push_back(std::move(C));
  }
  {
    SmokeCase C{"mttkrp3", makeMttkrp(3), {}, {Dim3, Rank}, "C"};
    C.Inputs.emplace("A", Mat3());
    C.Inputs.emplace("B", generateDenseMatrix(Dim3, Rank, R));
    Cases.push_back(std::move(C));
  }
  return Cases;
}

Tensor runOnce(const Kernel &K, SmokeCase &C, bool Fused,
               MicroKernelStats &Stats) {
  ExecOptions O;
  O.EnableMicroKernels = Fused;
  Executor E(K, O);
  Tensor Out = Tensor::dense(C.OutDims, 0.0);
  Out.setAllValues(C.OutInit);
  for (auto &[Name, T] : C.Inputs)
    E.bind(Name, &T);
  E.bind(C.OutName, &Out);
  E.prepare();
  Stats = E.microKernelStats();
  E.run();
  return Out;
}

} // namespace

TEST(PerfSmoke, SpecializerFiresOnAllPaperKernels) {
  for (SmokeCase &C : makeCases()) {
    SCOPED_TRACE(C.Name);
    CompileResult R = compileEinsum(C.E);
    for (const Kernel *K : {&R.Naive, &R.Optimized}) {
      SCOPED_TRACE(K == &R.Naive ? "naive" : "optimized");
      MicroKernelStats FusedStats, GenericStats;
      Tensor Generic = runOnce(*K, C, /*Fused=*/false, GenericStats);
      Tensor Fused = runOnce(*K, C, /*Fused=*/true, FusedStats);
      // Counter-based acceptance: the specializer must fire...
      EXPECT_GT(FusedStats.SpecializedLoops, 0u);
      EXPECT_GT(FusedStats.InnermostFused, 0u);
      EXPECT_EQ(GenericStats.SpecializedLoops, 0u);
      // ...and the fused engines must be bit-identical to the oracle.
      ASSERT_EQ(Generic.vals().size(), Fused.vals().size());
      for (size_t I = 0; I < Generic.vals().size(); ++I)
        EXPECT_EQ(Generic.vals()[I], Fused.vals()[I]) << "element " << I;
    }
  }
}

TEST(PerfSmoke, FullCoverageOnOptimizedPlans) {
  // Stronger claim worth noticing if it regresses: today the
  // specializer covers *every* loop of the five optimized paper
  // kernels (no generic fallbacks at all).
  for (SmokeCase &C : makeCases()) {
    SCOPED_TRACE(C.Name);
    CompileResult R = compileEinsum(C.E);
    MicroKernelStats Stats;
    runOnce(R.Optimized, C, /*Fused=*/true, Stats);
    EXPECT_EQ(Stats.GenericLoops, 0u);
  }
}

TEST(PerfSmoke, FullCoverageAcrossDriverFormatVariants) {
  // The acceptance line for the closed specializer gaps: every one of
  // the five optimized paper kernels stays fully fused — zero generic
  // fallbacks — when A's bottom level is re-declared Dense, Sparse,
  // RunLength, or Banded (the driver-format axis), and the fused
  // engines remain bit-identical to the interpreter on each variant.
  struct KernelSpec {
    const char *Name;
    Einsum E;
    unsigned OrderA;
  };
  std::vector<KernelSpec> Kernels;
  Kernels.push_back({"ssymv", makeSsymv(), 2});
  Kernels.push_back({"syprd", makeSyprd(), 2});
  Kernels.push_back({"ssyrk", makeSsyrk(), 2});
  Kernels.push_back({"ttm", makeTtm(), 3});
  Kernels.push_back({"mttkrp3", makeMttkrp(3), 3});
  const LevelKind Bottoms[] = {LevelKind::Dense, LevelKind::Sparse,
                               LevelKind::RunLength, LevelKind::Banded};
  Rng R(20260801);
  const int64_t N2 = 32, N3 = 12, Rank = 5;
  for (KernelSpec &KS : Kernels) {
    const bool Sym = KS.Name != std::string("ssyrk");
    for (LevelKind Bottom : Bottoms) {
      SCOPED_TRACE(std::string(KS.Name) + " bottom=" +
                   std::to_string(static_cast<int>(Bottom)));
      TensorFormat Fmt = TensorFormat::csf(KS.OrderA);
      Fmt.Levels[KS.OrderA - 1] = Bottom;
      Einsum E = KS.E;
      E.declare("A", Fmt);
      if (Sym)
        E.setSymmetry("A", Partition::full(KS.OrderA));
      const int64_t Dim = KS.OrderA == 2 ? N2 : N3;
      SmokeCase C{KS.Name, E, {}, {}, "", 0.0};
      C.Inputs.emplace(
          "A", generateSymmetricTensor(KS.OrderA, Dim, 10 * Dim, R, Fmt));
      if (KS.Name == std::string("ssymv") ||
          KS.Name == std::string("syprd")) {
        C.Inputs.emplace("x", generateDenseVector(Dim, R));
        C.OutDims = KS.Name == std::string("syprd")
                        ? std::vector<int64_t>{1}
                        : std::vector<int64_t>{Dim};
        C.OutName = "y";
      } else if (KS.Name == std::string("ssyrk")) {
        C.OutDims = {Dim, Dim};
        C.OutName = "C";
      } else if (KS.Name == std::string("ttm")) {
        C.Inputs.emplace("B", generateDenseMatrix(Dim, Rank, R));
        C.OutDims = {Rank, Dim, Dim};
        C.OutName = "C";
      } else {
        C.Inputs.emplace("B", generateDenseMatrix(Dim, Rank, R));
        C.OutDims = {Dim, Rank};
        C.OutName = "C";
      }
      CompileResult R2 = compileEinsum(C.E);
      MicroKernelStats FusedStats, GenericStats;
      Tensor Generic = runOnce(R2.Optimized, C, /*Fused=*/false,
                               GenericStats);
      Tensor Fused = runOnce(R2.Optimized, C, /*Fused=*/true, FusedStats);
      EXPECT_GT(FusedStats.SpecializedLoops, 0u);
      EXPECT_EQ(FusedStats.GenericLoops, 0u)
          << "optimized " << KS.Name << " must stay fully fused";
      ASSERT_EQ(Generic.vals().size(), Fused.vals().size());
      for (size_t I = 0; I < Generic.vals().size(); ++I)
        EXPECT_EQ(Generic.vals()[I], Fused.vals()[I]) << "element " << I;
    }
  }
}

TEST(PerfSmoke, CoWalkerVariantsFullyFused) {
  // Structured and sparse vectors as the *second* operand of ssymv: in
  // the naive nest the vector walks alongside A's top level, so the
  // fused loop intersects a sparse driver with a Sparse / RunLength /
  // Banded co-walker (the formerly-declined placements). Both kernels
  // stay fully fused and bit-identical; the per-shape counters pin
  // which co-walker engine ran.
  struct Variant {
    const char *Name;
    LevelKind Kind;
  };
  const Variant Variants[] = {{"x-sparse", LevelKind::Sparse},
                              {"x-runlength", LevelKind::RunLength},
                              {"x-banded", LevelKind::Banded}};
  Rng R(20260801);
  const int64_t N = 40;
  for (const Variant &V : Variants) {
    SCOPED_TRACE(V.Name);
    Einsum E = makeSsymv();
    TensorFormat XFmt{{V.Kind}};
    E.declare("x", XFmt);
    SmokeCase C{V.Name, E, {}, {N}, "y", 0.0};
    C.Inputs.emplace("A", generateSymmetricTensor(2, N, 4 * N, R,
                                                  TensorFormat::csf(2)));
    Coo XC({N});
    for (int64_t K = 0; K < N; ++K)
      if (K % 3 != 1)
        XC.add({K}, static_cast<double>(1 + K % 7));
    C.Inputs.emplace("x", Tensor::fromCoo(std::move(XC), XFmt));
    CompileResult R2 = compileEinsum(C.E);
    for (const Kernel *K : {&R2.Naive, &R2.Optimized}) {
      SCOPED_TRACE(K == &R2.Naive ? "naive" : "optimized");
      MicroKernelStats FusedStats, GenericStats;
      Tensor Generic = runOnce(*K, C, /*Fused=*/false, GenericStats);
      Tensor Fused = runOnce(*K, C, /*Fused=*/true, FusedStats);
      EXPECT_EQ(FusedStats.GenericLoops, 0u);
      if (K == &R2.Naive) {
        // The naive nest has the A-driver + x-co-walker loop.
        EXPECT_GT(FusedStats.FusedCoWalkers, 0u);
        if (V.Kind == LevelKind::RunLength)
          EXPECT_GT(FusedStats.FusedRunLengthCoWalkers, 0u);
        else if (V.Kind == LevelKind::Banded)
          EXPECT_GT(FusedStats.FusedBandedCoWalkers, 0u);
      }
      ASSERT_EQ(Generic.vals().size(), Fused.vals().size());
      for (size_t I = 0; I < Generic.vals().size(); ++I)
        EXPECT_EQ(Generic.vals()[I], Fused.vals()[I]) << "element " << I;
    }
  }
}

TEST(PerfSmoke, ThreeSparseOperandProductFusesNWay) {
  // A product of three sparse matrices intersects three walkers on the
  // shared index — the N-way multi-finger merge the specializer used to
  // decline (>2 walkers). Zero generic fallbacks, bit-identical to the
  // interpreter, and the FusedNWalkerLoops counter proves the shape.
  Rng R(20260801);
  const int64_t N = 40;
  Einsum E = parseEinsum("tri", "O[j] += A[i,j] * B[i,j] * C[i,j]");
  E.LoopOrder = {"j", "i"};
  for (const char *T : {"A", "B", "C"})
    E.declare(T, TensorFormat::csf(2));
  SmokeCase C{"tri", E, {}, {N}, "O", 0.0};
  for (const char *T : {"A", "B", "C"})
    C.Inputs.emplace(T, generateSymmetricTensor(2, N, 4 * N, R,
                                                TensorFormat::csf(2)));
  CompileResult R2 = compileEinsum(C.E);
  for (const Kernel *K : {&R2.Naive, &R2.Optimized}) {
    SCOPED_TRACE(K == &R2.Naive ? "naive" : "optimized");
    MicroKernelStats FusedStats, GenericStats;
    Tensor Generic = runOnce(*K, C, /*Fused=*/false, GenericStats);
    Tensor Fused = runOnce(*K, C, /*Fused=*/true, FusedStats);
    EXPECT_GT(FusedStats.FusedNWalkerLoops, 0u);
    EXPECT_GE(FusedStats.FusedCoWalkers, 2u);
    EXPECT_EQ(FusedStats.GenericLoops, 0u);
    ASSERT_EQ(Generic.vals().size(), Fused.vals().size());
    for (size_t I = 0; I < Generic.vals().size(); ++I)
      EXPECT_EQ(Generic.vals()[I], Fused.vals()[I]) << "element " << I;
  }
}

TEST(PerfSmoke, LutKernelFullyFused) {
  // mttkrp4's optimized plan carries simplicial lookup tables (paper
  // 4.2.5) in its diagonal blocks — previously a hard decline. The Lut
  // operands must now bind into the fused bodies (FusedLutFactors),
  // with zero generic fallbacks and bit-identical results.
  Rng R(20260801);
  const int64_t Dim = 8, Rank = 4;
  SmokeCase C{"mttkrp4", makeMttkrp(4), {}, {Dim, Rank}, "C", 0.0};
  C.Inputs.emplace("A", generateSymmetricTensor(4, Dim, 150, R,
                                                TensorFormat::csf(4)));
  C.Inputs.emplace("B", generateDenseMatrix(Dim, Rank, R));
  CompileResult R2 = compileEinsum(C.E);
  MicroKernelStats FusedStats, GenericStats;
  Tensor Generic = runOnce(R2.Optimized, C, /*Fused=*/false, GenericStats);
  Tensor Fused = runOnce(R2.Optimized, C, /*Fused=*/true, FusedStats);
  EXPECT_GT(FusedStats.FusedLutFactors, 0u)
      << "the simplicial lookup tables must fuse";
  EXPECT_EQ(FusedStats.GenericLoops, 0u);
  ASSERT_EQ(Generic.vals().size(), Fused.vals().size());
  for (size_t I = 0; I < Generic.vals().size(); ++I)
    EXPECT_EQ(Generic.vals()[I], Fused.vals()[I]) << "element " << I;
}

namespace {

/// ssymv / bellman-ford variants with A re-declared in \p F (the
/// structured-format axis: RunLength and Banded bottom levels, sparse
/// top levels).
SmokeCase formatVariant(const std::string &Name, Einsum E,
                        const TensorFormat &F, Tensor A, Tensor X,
                        double OutInit) {
  const std::string VecName = E.Name == "ssymv" ? "x" : "d";
  E.declare("A", F, E.decl("A").Fill);
  E.setSymmetry("A", Partition::full(2));
  SmokeCase C{Name, std::move(E), {}, {A.dim(0)}, "y"};
  C.Inputs.emplace("A", std::move(A));
  C.Inputs.emplace(VecName, std::move(X));
  C.OutInit = OutInit;
  return C;
}

} // namespace

TEST(PerfSmoke, SpecializerFiresOnRunLengthAndBandedDrivers) {
  // The format-general engines: RunLength- and Banded-driven variants
  // of the paper kernels must specialize (per-shape counters), stay
  // fully covered, and reproduce the interpreter bit for bit.
  Rng R(20260801);
  const int64_t N = 48;
  TensorFormat Rle{{LevelKind::Dense, LevelKind::RunLength}};
  TensorFormat Band{{LevelKind::Dense, LevelKind::Banded}};
  std::vector<SmokeCase> Cases;
  Cases.push_back(formatVariant(
      "ssymv-rle", makeSsymv(), Rle,
      generateSymmetricTensor(2, N, 3 * N, R, Rle),
      generateDenseVector(N, R), 0.0));
  Cases.push_back(formatVariant(
      "ssymv-banded", makeSsymv(), Band,
      generateBandedSymmetric(N, 4, R, Band),
      generateDenseVector(N, R), 0.0));
  const double Inf = std::numeric_limits<double>::infinity();
  Cases.push_back(formatVariant(
      "bellmanford-banded", makeBellmanFord(), Band,
      generateBandedSymmetric(N, 4, R, Band, Inf), // fill inf off-band
      generateDenseVector(N, R), Inf));
  for (SmokeCase &C : Cases) {
    SCOPED_TRACE(C.Name);
    const bool Rl = C.Name.find("rle") != std::string::npos;
    CompileResult R2 = compileEinsum(C.E);
    for (const Kernel *K : {&R2.Naive, &R2.Optimized}) {
      SCOPED_TRACE(K == &R2.Naive ? "naive" : "optimized");
      MicroKernelStats FusedStats, GenericStats;
      Tensor Generic = runOnce(*K, C, /*Fused=*/false, GenericStats);
      Tensor Fused = runOnce(*K, C, /*Fused=*/true, FusedStats);
      EXPECT_GT(FusedStats.SpecializedLoops, 0u);
      EXPECT_EQ(FusedStats.GenericLoops, 0u);
      if (Rl)
        EXPECT_GT(FusedStats.FusedRunLengthDrivers, 0u);
      else
        EXPECT_GT(FusedStats.FusedBandedDrivers, 0u);
      ASSERT_EQ(Generic.vals().size(), Fused.vals().size());
      for (size_t I = 0; I < Generic.vals().size(); ++I)
        EXPECT_EQ(Generic.vals()[I], Fused.vals()[I]) << "element " << I;
    }
  }
}

TEST(PerfSmoke, WalkersRecoveredOnGroupedTwoSparseOperandKernels) {
  // Grouped symmetric kernels over two sparse operands, with A in a
  // sparse-topped (DCSR) format: the workspace flush used to cost the
  // outer walker under the string-level membership check. The algebra
  // must recover it (WalkersRecovered > 0), the mismatched accesses of
  // the second sparse operand must bind as SparseLoad factors inside
  // the fused bodies, and the plans stay fully fused and bit-identical
  // to the interpreter.
  Rng R(20260801);
  const int64_t N = 48;
  TensorFormat Dcsr{{LevelKind::Sparse, LevelKind::Sparse}};
  TensorFormat SpVec{{LevelKind::Sparse}};
  Einsum E = makeSsymv();
  E.declare("A", Dcsr);
  E.setSymmetry("A", Partition::full(2));
  E.declare("x", SpVec);
  SmokeCase C{"ssymv-2sparse", E, {}, {N}, "y"};
  C.Inputs.emplace("A", generateSymmetricTensor(2, N, 3 * N, R, Dcsr));
  Coo XC({N});
  for (int64_t K = 0; K < N; ++K)
    if (K % 3 != 0)
      XC.add({K}, 1.0 + K);
  C.Inputs.emplace("x", Tensor::fromCoo(std::move(XC), SpVec));
  CompileResult R2 = compileEinsum(C.E);
  for (const Kernel *K : {&R2.Naive, &R2.Optimized}) {
    SCOPED_TRACE(K == &R2.Naive ? "naive" : "optimized");
    MicroKernelStats FusedStats, GenericStats;
    Tensor Generic = runOnce(*K, C, /*Fused=*/false, GenericStats);
    Tensor Fused = runOnce(*K, C, /*Fused=*/true, FusedStats);
    if (K == &R2.Optimized) {
      // Only the grouped symmetric lowering has the workspace flush
      // (losing the top-level walker under membership) and the
      // mismatched second-operand accesses (x[j] vs x[i]) that must
      // bind as SparseLoad factors; the naive nest walks both operands
      // directly.
      EXPECT_GT(FusedStats.WalkersRecovered, 0u)
          << "the workspace flush must not cost the sparse-topped walker";
      EXPECT_GT(FusedStats.FusedSparseLoadFactors, 0u)
          << "second sparse operand must fuse via the chained locator";
      EXPECT_GT(FusedStats.PrebindSlots, 0u)
          << "row-invariant SparseLoad prefixes must prebind per row";
    }
    EXPECT_GT(FusedStats.SpecializedLoops, 0u);
    EXPECT_EQ(FusedStats.GenericLoops, 0u);
    ASSERT_EQ(Generic.vals().size(), Fused.vals().size());
    for (size_t I = 0; I < Generic.vals().size(); ++I)
      EXPECT_EQ(Generic.vals()[I], Fused.vals()[I]) << "element " << I;
  }
}

TEST(PerfSmoke, BlockedOutputEngineCoversSsyrkAndSpmm) {
  // The register/cache-blocked output engine (the ssyrk memory-wall
  // fix): the optimized ssyrk plan must install blocked nests
  // (BlockedLoops > 0) while staying fully fused (LoopsGeneric == 0),
  // and actually execute panels at run time (the FusedBlockedPanels
  // global counter). The SpMM-style workspace shape must take the
  // register-accumulator form (BlockedAccumLoops > 0). The
  // EnableBlocking=false ablation must keep everything on the
  // unblocked nests with zero panels.
  Rng R(20260801);
  const int64_t N = 40, Rank = 6;

  struct BlockedCase {
    std::string Name;
    Einsum E;
    std::map<std::string, Tensor> Inputs;
    std::vector<int64_t> OutDims;
    std::string OutName;
    bool ExpectAccum;
  };
  std::vector<BlockedCase> Cases;
  {
    BlockedCase C{"ssyrk", makeSsyrk(), {}, {N, N}, "C", false};
    C.Inputs.emplace("A", generateSymmetricTensor(2, N, 4 * N, R,
                                                  TensorFormat::csf(2)));
    Cases.push_back(std::move(C));
  }
  {
    Einsum E = parseEinsum("spmm", "C[i,k] += A[i,j] * B[j,k]");
    E.LoopOrder = {"i", "k", "j"};
    E.declare("A", TensorFormat::csf(2));
    BlockedCase C{"spmm", std::move(E), {}, {N, Rank}, "C", true};
    C.Inputs.emplace("A", generateSymmetricTensor(2, N, 4 * N, R,
                                                  TensorFormat::csf(2)));
    C.Inputs.emplace("B", generateDenseMatrix(N, Rank, R));
    Cases.push_back(std::move(C));
  }

  for (BlockedCase &C : Cases) {
    SCOPED_TRACE(C.Name);
    CompileResult R2 = compileEinsum(C.E);
    for (bool Blocking : {true, false}) {
      SCOPED_TRACE(Blocking ? "blocking on" : "blocking off");
      ExecOptions O;
      O.EnableBlocking = Blocking;
      Executor E(R2.Optimized, O);
      Tensor Out = Tensor::dense(C.OutDims, 0.0);
      for (auto &[Name, T] : C.Inputs)
        E.bind(Name, &T);
      E.bind(C.OutName, &Out);
      E.prepare();
      const MicroKernelStats &Stats = E.microKernelStats();
      EXPECT_EQ(Stats.GenericLoops, 0u)
          << "blocking must not cost full fusion";
      if (Blocking) {
        EXPECT_GT(Stats.BlockedLoops, 0u);
        if (C.ExpectAccum)
          EXPECT_GT(Stats.BlockedAccumLoops, 0u);
      } else {
        EXPECT_EQ(Stats.BlockedLoops, 0u);
      }
      counters().reset();
      setCountersEnabled(true);
      E.run();
      CounterSnapshot Snap = counters().snapshot();
      if (Blocking) {
        EXPECT_GT(Snap.FusedBlockedPanels, 0u)
            << "the blocked engine must actually execute panels";
        EXPECT_GT(Snap.FusedBlockedStores, 0u);
      } else {
        EXPECT_EQ(Snap.FusedBlockedPanels, 0u);
      }
    }
  }
}

TEST(PerfSmoke, TracingOverheadBounded) {
  // The observability layer's cost pin. Two claims: (1) with tracing
  // off, a run emits zero trace events (the disabled path is a single
  // relaxed-atomic branch, asserted structurally here and by ratio in
  // bench_check's tracing-off gate against the checked-in baseline);
  // (2) even with tracing *on*, a paper kernel's body stays within a
  // generous multiple of its untraced time — spans are per loop
  // dispatch and per pool task, never per element. Medians of several
  // runs and an absolute slack keep this stable on 1-core CI.
  Rng R(20260801);
  const int64_t N = 1000;
  Tensor A = generateSymmetricTensor(2, N, 8 * N, R, TensorFormat::csf(2));
  Tensor X = generateDenseVector(N, R);
  Tensor Y = Tensor::dense({N});
  CompileResult C = compileEinsum(makeSsymv());
  Executor E(C.Optimized);
  E.bind("A", &A).bind("x", &X).bind("y", &Y);
  E.prepare();

  auto MedianMs = [&] {
    std::vector<double> Ms;
    for (int I = 0; I < 7; ++I) {
      Y.setAllValues(0.0);
      const uint64_t T0 = obs::nowNs();
      E.runBody();
      Ms.push_back((obs::nowNs() - T0) / 1e6);
    }
    std::sort(Ms.begin(), Ms.end());
    return Ms[Ms.size() / 2];
  };

  setCountersEnabled(false); // match the bench methodology
  ASSERT_FALSE(obs::tracingEnabled());
  const uint64_t EventsBefore = obs::traceEventCount();
  const double OffMs = MedianMs();
  EXPECT_EQ(obs::traceEventCount(), EventsBefore)
      << "tracing-off runs must emit zero trace events";

  obs::setTracingEnabled(true);
  const double OnMs = MedianMs();
  obs::setTracingEnabled(false);
  setCountersEnabled(true);
  EXPECT_GT(obs::traceEventCount(), EventsBefore)
      << "tracing-on runs must emit spans";

  EXPECT_LE(OnMs, OffMs * 8.0 + 5.0)
      << "traced run " << OnMs << " ms vs untraced " << OffMs
      << " ms: span emission has grown into the hot path";
}

TEST(PerfSmoke, ValidationOffHasZeroHotPathCost) {
  // The integrity-validation cost pin (docs/ROBUSTNESS.md). Three
  // claims: (1) with ValidateInputs=None — the default — the report
  // carries no "validate" phase at all: the check is structurally
  // absent, not merely fast; (2) Deep validation is a prepare-time
  // pre-pass, so it changes neither the results nor a single runtime
  // counter of the body; (3) the body's wall time is unaffected by the
  // validation tier (median-of-runs with generous slack, same
  // methodology as the tracing pin above).
  Rng R(20260801);
  const int64_t N = 1000;
  Tensor A = generateSymmetricTensor(2, N, 8 * N, R, TensorFormat::csf(2));
  Tensor X = generateDenseVector(N, R);
  CompileResult C = compileEinsum(makeSsymv());

  auto Median = [](std::vector<double> Ms) {
    std::sort(Ms.begin(), Ms.end());
    return Ms[Ms.size() / 2];
  };
  auto Setup = [&](ValidationLevel VL, Tensor &Y, CounterSnapshot &Snap,
                   std::vector<double> &Ms) {
    ExecOptions O;
    O.ValidateInputs = VL;
    Executor E(C.Optimized, O);
    E.bind("A", &A).bind("x", &X).bind("y", &Y);
    E.prepare();
    for (const obs::PhaseStat &P : E.lastReport().Phases)
      if (VL == ValidationLevel::None)
        EXPECT_NE(P.Name, "validate")
            << "hot-path default must not even time a validation phase";
    counters().reset();
    setCountersEnabled(true);
    for (int I = 0; I < 7; ++I) {
      Y.setAllValues(0.0);
      const uint64_t T0 = obs::nowNs();
      E.runBody();
      Ms.push_back((obs::nowNs() - T0) / 1e6);
    }
    Snap = counters().snapshot();
  };

  Tensor YOff = Tensor::dense({N}), YDeep = Tensor::dense({N});
  CounterSnapshot SOff, SDeep;
  std::vector<double> MsOff, MsDeep;
  Setup(ValidationLevel::None, YOff, SOff, MsOff);
  Setup(ValidationLevel::Deep, YDeep, SDeep, MsDeep);

  ASSERT_EQ(YOff.vals().size(), YDeep.vals().size());
  for (size_t I = 0; I < YOff.vals().size(); ++I)
    EXPECT_EQ(YOff.vals()[I], YDeep.vals()[I]) << "element " << I;
  EXPECT_EQ(SOff.SparseReads, SDeep.SparseReads);
  EXPECT_EQ(SOff.Reductions, SDeep.Reductions);
  EXPECT_EQ(SOff.ScalarOps, SDeep.ScalarOps);
  EXPECT_EQ(SOff.OutputWrites, SDeep.OutputWrites);

  EXPECT_LE(Median(MsDeep), Median(MsOff) * 4.0 + 5.0)
      << "Deep validation must stay out of the execution loops "
         "(prepare-time only)";
}
