//===- tests/annihilation_test.cpp ----------------------------*- C++ -*-===//
///
/// Unit suite for the algebraic annihilation analysis
/// (runtime/Annihilation.h) and its integration with walker
/// registration: per-operator-position algebra cases on hand-built
/// statement trees, plus end-to-end kernels pinned by the new
/// WalkersRecovered / WalkersRejected counters — an additive body whose
/// fill still annihilates recovers a coordinate-skipping walker the
/// legacy membership check rejects, and a non-annihilating fill must
/// not, with the fused and interpreted paths bit-identical either way.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "ir/Kernel.h"
#include "kernels/Oracle.h"
#include "runtime/Annihilation.h"
#include "runtime/Executor.h"
#include "support/Counters.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <limits>

using namespace systec;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

ExprPtr acc(const std::string &T, std::vector<std::string> Idx) {
  return Expr::access(T, std::move(Idx));
}

/// Key of the canonical A[a, b] access, printed exactly as the
/// registration sees it.
std::string keyA() { return acc("A", {"a", "b"})->str(); }

} // namespace

//===----------------------------------------------------------------------===//
// Per-operator-position algebra on hand-built trees
//===----------------------------------------------------------------------===//

TEST(AnnihilationAlgebra, MultiplicativeBodyFillZero) {
  // O[b] += A[a,b] * x[a]: fill 0 annihilates the product and 0 is the
  // Add identity.
  StmtPtr S = Stmt::assign(
      acc("O", {"b"}), OpKind::Add,
      Expr::call(OpKind::Mul, {acc("A", {"a", "b"}), acc("x", {"a"})}));
  EXPECT_TRUE(accessAnnihilatesSubtree(S, keyA(), 0.0));
  // Fill 1 forces nothing through a product.
  EXPECT_FALSE(accessAnnihilatesSubtree(S, keyA(), 1.0));
}

TEST(AnnihilationAlgebra, AdditiveBodyMinPlus) {
  // O[b] min= A[a,b] + x[a]: +inf absorbs addition and is the Min
  // identity — the Bellman-Ford shape. Fill 0 does not absorb.
  StmtPtr S = Stmt::assign(
      acc("O", {"b"}), OpKind::Min,
      Expr::call(OpKind::Add, {acc("A", {"a", "b"}), acc("x", {"a"})}));
  EXPECT_TRUE(accessAnnihilatesSubtree(S, keyA(), Inf));
  EXPECT_FALSE(accessAnnihilatesSubtree(S, keyA(), 0.0));
}

TEST(AnnihilationAlgebra, MaxTimesFillZeroDoesNotAnnihilate) {
  // O[b] max= A[a,b] * x[a]: the product collapses to 0, but 0 is not
  // the Max identity (-inf), so skipping is unsound.
  StmtPtr S = Stmt::assign(
      acc("O", {"b"}), OpKind::Max,
      Expr::call(OpKind::Mul, {acc("A", {"a", "b"}), acc("x", {"a"})}));
  EXPECT_FALSE(accessAnnihilatesSubtree(S, keyA(), 0.0));
}

TEST(AnnihilationAlgebra, OperatorPositionMatters) {
  // x[a] - A[a,b]: subtraction has no annihilator, so even a fill-0
  // operand forces nothing (x - 0 == x is the identity in the *other*
  // position).
  StmtPtr S = Stmt::assign(
      acc("O", {"b"}), OpKind::Add,
      Expr::call(OpKind::Sub, {acc("x", {"a"}), acc("A", {"a", "b"})}));
  EXPECT_FALSE(accessAnnihilatesSubtree(S, keyA(), 0.0));
  // In a product the position is irrelevant (commutative annihilator).
  StmtPtr P = Stmt::assign(
      acc("O", {"b"}), OpKind::Add,
      Expr::call(OpKind::Mul, {acc("x", {"a"}), acc("A", {"a", "b"})}));
  EXPECT_TRUE(accessAnnihilatesSubtree(P, keyA(), 0.0));
}

TEST(AnnihilationAlgebra, PropagatesThroughScalarDefs) {
  // t = A[a,b] * x[a]; O[b] += t: the constant flows through the def.
  StmtPtr S = Stmt::block(
      {Stmt::defScalar("t", Expr::call(OpKind::Mul, {acc("A", {"a", "b"}),
                                                     acc("x", {"a"})})),
       Stmt::assign(acc("O", {"b"}), OpKind::Add, Expr::scalar("t"))});
  EXPECT_TRUE(accessAnnihilatesSubtree(S, keyA(), 0.0));
  EXPECT_TRUE(accessBacksEveryAssignment(S, keyA()))
      << "membership also accepts this shape";
}

TEST(AnnihilationAlgebra, WorkspaceFlushRecovered) {
  // The workspace pattern the legacy membership check cannot see:
  //   w = 0; for a: w += A[a,b] * x[a]; O[b] += w
  // Under the hypothesis, w provably stays at the Add identity, so the
  // flush is a no-op — but w's refs are empty (literal def), so
  // membership rejects.
  StmtPtr S = Stmt::block(
      {Stmt::defScalar("w", Expr::lit(0.0)),
       Stmt::loop("a", Stmt::assign(Expr::scalar("w"), OpKind::Add,
                                    Expr::call(OpKind::Mul,
                                               {acc("A", {"a", "b"}),
                                                acc("x", {"a"})}))),
       Stmt::assign(acc("O", {"b"}), OpKind::Add, Expr::scalar("w"))});
  EXPECT_TRUE(accessAnnihilatesSubtree(S, keyA(), 0.0));
  EXPECT_FALSE(accessBacksEveryAssignment(S, keyA()));
  // The min-plus flavor of the same shape (additive body).
  StmtPtr M = Stmt::block(
      {Stmt::defScalar("w", Expr::lit(Inf)),
       Stmt::loop("a", Stmt::assign(Expr::scalar("w"), OpKind::Min,
                                    Expr::call(OpKind::Add,
                                               {acc("A", {"a", "b"}),
                                                acc("x", {"a"})}))),
       Stmt::assign(acc("O", {"b"}), OpKind::Min, Expr::scalar("w"))});
  EXPECT_TRUE(accessAnnihilatesSubtree(M, keyA(), Inf));
  EXPECT_FALSE(accessBacksEveryAssignment(M, keyA()));
  // A workspace seeded off the identity is not provably transparent.
  StmtPtr Bad = Stmt::block(
      {Stmt::defScalar("w", Expr::lit(3.0)),
       Stmt::assign(acc("O", {"b"}), OpKind::Add, Expr::scalar("w"))});
  EXPECT_FALSE(accessAnnihilatesSubtree(Bad, keyA(), 0.0));
}

TEST(AnnihilationAlgebra, ConditionalDefsJoin) {
  // A conditional redefinition that changes the abstract value widens
  // to unknown; one that agrees keeps the constant.
  Cond C = Cond::conj({CmpAtom{CmpKind::EQ, "a", "b"}});
  StmtPtr Agree = Stmt::block(
      {Stmt::defScalar("t", acc("A", {"a", "b"})),
       Stmt::ifThen(C, Stmt::defScalar("t", acc("A", {"a", "b"}))),
       Stmt::assign(acc("O", {"b"}), OpKind::Add,
                    Expr::call(OpKind::Mul,
                               {Expr::scalar("t"), acc("x", {"a"})}))});
  EXPECT_TRUE(accessAnnihilatesSubtree(Agree, keyA(), 0.0));
  StmtPtr Disagree = Stmt::block(
      {Stmt::defScalar("t", acc("A", {"a", "b"})),
       Stmt::ifThen(C, Stmt::defScalar("t", acc("x", {"a"}))),
       Stmt::assign(acc("O", {"b"}), OpKind::Add,
                    Expr::call(OpKind::Mul,
                               {Expr::scalar("t"), acc("x", {"a"})}))});
  EXPECT_FALSE(accessAnnihilatesSubtree(Disagree, keyA(), 0.0));
}

TEST(AnnihilationAlgebra, LoopCarriedScalarIsWidened) {
  // s accumulates across iterations and is then flushed *inside* the
  // walked loop's subtree with an overwrite: never skippable.
  StmtPtr S = Stmt::block(
      {Stmt::assign(Expr::scalar("s"), OpKind::Add,
                    Expr::call(OpKind::Mul,
                               {acc("A", {"a", "b"}), acc("x", {"a"})})),
       Stmt::assign(acc("O", {"b"}), std::nullopt, Expr::scalar("s"))});
  EXPECT_FALSE(accessAnnihilatesSubtree(S, keyA(), 0.0));
}

TEST(AnnihilationAlgebra, OverwritesAndLutsAreConservative) {
  StmtPtr Over = Stmt::assign(acc("O", {"b"}), std::nullopt,
                              Expr::call(OpKind::Mul, {acc("A", {"a", "b"}),
                                                       acc("x", {"a"})}));
  EXPECT_FALSE(accessAnnihilatesSubtree(Over, keyA(), 0.0));
  StmtPtr Lut = Stmt::assign(
      acc("O", {"b"}), OpKind::Add,
      Expr::call(OpKind::Mul,
                 {acc("A", {"a", "b"}),
                  Expr::lut({CmpAtom{CmpKind::EQ, "a", "b"}},
                            {10.0, 100.0})}));
  // A Lut factor is unknown, but the annihilating fill still absorbs
  // the product around it.
  EXPECT_TRUE(accessAnnihilatesSubtree(Lut, keyA(), 0.0));
}

TEST(AnnihilationAlgebra, MixedInfinitiesStayUnknown) {
  // inf + (-inf) is NaN at runtime: two absorbing operands that force
  // different results must not prove anything.
  StmtPtr S = Stmt::assign(
      acc("O", {"b"}), OpKind::Min,
      Expr::call(OpKind::Add, {acc("A", {"a", "b"}), Expr::lit(-Inf)}));
  EXPECT_FALSE(accessAnnihilatesSubtree(S, keyA(), Inf));
}

//===----------------------------------------------------------------------===//
// End-to-end: recovery and rejection pinned by counters
//===----------------------------------------------------------------------===//

namespace {

struct RunResult {
  Tensor Out;
  MicroKernelStats Stats;
  CounterSnapshot Counters;
};

RunResult runKernel(const Kernel &K, std::map<std::string, Tensor> &Inputs,
                    const std::string &OutName, Tensor OutInit,
                    const ExecOptions &O) {
  RunResult R{std::move(OutInit), {}, {}};
  Executor E(K, O);
  for (auto &[Name, T] : Inputs)
    E.bind(Name, &T);
  E.bind(OutName, &R.Out);
  counters().reset();
  setCountersEnabled(true);
  E.prepare();
  E.run();
  R.Stats = E.microKernelStats();
  R.Counters = counters().snapshot();
  return R;
}

/// The workspace kernel over a sparse-topped (DCSR-style) matrix:
///   for b: { w = init; for a: w R= A[a,b] C x[a]; O[b] R= w }
/// The loop-b walker on A's top Sparse level is exactly the shape the
/// membership check rejects (the flush reads a literal-seeded scalar).
Einsum workspaceEinsum(OpKind Reduce, const char *Combine, double Fill) {
  Einsum E = parseEinsum(
      "ws", std::string("O[b] ") +
                (Reduce == OpKind::Min ? "min= " : "+= ") + "A[a,b] " +
                Combine + " x[a]");
  E.LoopOrder = {"b", "a"};
  TensorFormat Dcsr;
  Dcsr.Levels = {LevelKind::Sparse, LevelKind::Sparse};
  E.declare("A", Dcsr, Fill);
  E.setSymmetry("A", Partition::full(2));
  E.declare("x", TensorFormat::dense(1));
  E.declare("O", TensorFormat::dense(1), opInfo(Reduce).Identity);
  return E;
}

/// The same contraction with loop order (a, b) and no symmetry or
/// workspace: the walker candidate on (transposed) A's top level exists
/// and the membership check accepts it, so a fill that does not
/// annihilate must show up as a WalkersRejected veto.
Einsum plainEinsum(OpKind Reduce, const char *Combine, double Fill) {
  Einsum E = parseEinsum(
      "plain", std::string("O[b] ") +
                   (Reduce == OpKind::Min ? "min= " : "+= ") + "A[a,b] " +
                   Combine + " x[a]");
  E.LoopOrder = {"a", "b"};
  TensorFormat Dcsr;
  Dcsr.Levels = {LevelKind::Sparse, LevelKind::Sparse};
  E.declare("A", Dcsr, Fill);
  E.declare("x", TensorFormat::dense(1));
  E.declare("O", TensorFormat::dense(1), opInfo(Reduce).Identity);
  return E;
}

} // namespace

class AnnihilationEndToEnd : public ::testing::Test {
protected:
  void runMatrix(const Einsum &E, OpKind Reduce, double Fill,
                 bool ExpectRecovered, bool ExpectRejected) {
    Rng R(11);
    const int64_t N = 24;
    TensorFormat Dcsr;
    Dcsr.Levels = {LevelKind::Sparse, LevelKind::Sparse};
    std::map<std::string, Tensor> Inputs;
    Inputs.emplace("A", generateSymmetricTensor(2, N, 3 * N, R, Dcsr, Fill));
    Inputs.emplace("x", generateDenseVector(N, R));
    Tensor Init = Tensor::dense({N}, 0.0);
    Init.setAllValues(opInfo(Reduce).Identity);

    std::map<std::string, const Tensor *> OracleIn;
    for (auto &[Name, T] : Inputs)
      OracleIn[Name] = &T;
    Tensor Ref = oracleEval(E, OracleIn);

    CompileResult CR = compileEinsum(E);
    for (const Kernel *K : {&CR.Naive, &CR.Optimized}) {
      SCOPED_TRACE(K == &CR.Naive ? "naive" : "optimized");
      ExecOptions Interp, Fused;
      Interp.EnableMicroKernels = false;
      RunResult RI = runKernel(*K, Inputs, "O", Init, Interp);
      RunResult RF = runKernel(*K, Inputs, "O", Init, Fused);
      // Correctness against the dense oracle and exact parity between
      // the interpreted and fused engines.
      EXPECT_LT(Tensor::maxAbsDiff(RI.Out, Ref), 1e-9);
      ASSERT_EQ(RI.Out.vals().size(), RF.Out.vals().size());
      for (size_t I = 0; I < RI.Out.vals().size(); ++I)
        EXPECT_EQ(RI.Out.vals()[I], RF.Out.vals()[I]) << "element " << I;
      EXPECT_EQ(RI.Counters.SparseReads, RF.Counters.SparseReads);
      EXPECT_EQ(RI.Counters.Reductions, RF.Counters.Reductions);
      if (ExpectRecovered)
        EXPECT_GT(RF.Stats.WalkersRecovered, 0u)
            << "algebra must recover a walker membership rejects";
      else
        EXPECT_EQ(RF.Stats.WalkersRecovered, 0u);
      if (ExpectRejected)
        EXPECT_GT(RF.Stats.WalkersRejected, 0u)
            << "algebra must veto a walker membership accepts";
      // The legacy mode registers strictly fewer walkers on recovered
      // shapes (and performs more sparse reads through the locator).
      if (ExpectRecovered) {
        ExecOptions Legacy;
        Legacy.AnnihilationAlgebra = false;
        RunResult RL = runKernel(*K, Inputs, "O", Init, Legacy);
        EXPECT_LT(RL.Stats.WalkersRegistered, RF.Stats.WalkersRegistered);
        EXPECT_GT(RL.Counters.SparseReads, RF.Counters.SparseReads);
        for (size_t I = 0; I < RL.Out.vals().size(); ++I)
          EXPECT_EQ(RL.Out.vals()[I], RF.Out.vals()[I])
              << "legacy mode is slower, never different, on sound shapes";
      }
    }
  }
};

TEST_F(AnnihilationEndToEnd, MultiplicativeWorkspaceRecoversWalker) {
  // Arithmetic (+, *) with fill 0: annihilating — the acceptance-
  // criteria shape. Membership loses the top-level walker (workspace
  // flush); the algebra recovers it.
  runMatrix(workspaceEinsum(OpKind::Add, "*", 0.0), OpKind::Add, 0.0,
            /*ExpectRecovered=*/true, /*ExpectRejected=*/false);
}

TEST_F(AnnihilationEndToEnd, AdditiveMinPlusWorkspaceRecoversWalker) {
  // min-plus with fill inf: an *additive* body whose fill still
  // annihilates. The string check rejects the walker; the algebra
  // proves w stays at +inf and recovers it.
  runMatrix(workspaceEinsum(OpKind::Min, "+", Inf), OpKind::Min, Inf,
            /*ExpectRecovered=*/true, /*ExpectRejected=*/false);
}

TEST_F(AnnihilationEndToEnd, AdditiveMinPlusFillZeroIsVetoed) {
  // min-plus with fill 0: membership accepts the walker (the access
  // backs every assignment), but 0 does not absorb addition — skipping
  // would drop real min candidates. The algebra vetoes it and the
  // result still matches the dense oracle.
  Einsum E = plainEinsum(OpKind::Min, "+", 0.0);
  runMatrix(E, OpKind::Min, 0.0,
            /*ExpectRecovered=*/false, /*ExpectRejected=*/true);
}

TEST_F(AnnihilationEndToEnd, MaxTimesFillZeroIsVetoed) {
  // max-times with fill 0: the product annihilates to 0 but 0 is not
  // the Max identity, so the walker must stay off.
  Einsum E = plainEinsum(OpKind::Max, "*", 0.0);
  E.ReduceOp = OpKind::Max;
  runMatrix(E, OpKind::Max, 0.0,
            /*ExpectRecovered=*/false, /*ExpectRejected=*/true);
}

TEST(AnnihilationEndToEnd2, RecoveredWalkerKeepsPlansFullyFused) {
  // The recovered top-level walker re-enables coordinate-driven
  // compilation of the whole nest: every loop of the optimized DCSR
  // workspace kernel specializes, with sparse drivers on both levels.
  Rng R(5);
  const int64_t N = 24;
  TensorFormat Dcsr;
  Dcsr.Levels = {LevelKind::Sparse, LevelKind::Sparse};
  Einsum E = workspaceEinsum(OpKind::Add, "*", 0.0);
  std::map<std::string, Tensor> Inputs;
  Inputs.emplace("A", generateSymmetricTensor(2, N, 3 * N, R, Dcsr));
  Inputs.emplace("x", generateDenseVector(N, R));
  Tensor Init = Tensor::dense({N}, 0.0);
  CompileResult CR = compileEinsum(E);
  RunResult RR = runKernel(CR.Optimized, Inputs, "O", Init, ExecOptions());
  EXPECT_EQ(RR.Stats.GenericLoops, 0u);
  EXPECT_GT(RR.Stats.FusedSparseDrivers, 0u);
  EXPECT_GT(RR.Stats.WalkersRecovered, 0u);
  // The global counter mirrors the per-executor stat.
  EXPECT_EQ(RR.Counters.WalkersRecovered, RR.Stats.WalkersRecovered);
}
