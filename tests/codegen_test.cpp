//===- tests/codegen_test.cpp ---------------------------------*- C++ -*-===//
///
/// Tests for the C++ source backend: structural golden checks on the
/// emitted kernels, and a syntax check of every emitted kernel with the
/// same compiler that built the library.
///
//===----------------------------------------------------------------------===//

#include "core/Codegen.h"
#include "core/Compiler.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace systec;

namespace {

std::string emitFor(const Einsum &E, PipelineOptions Opt = {}) {
  return emitCpp(compileEinsum(E, Opt).Optimized);
}

} // namespace

TEST(Codegen, SsymvStructure) {
  std::string Src = emitFor(makeSsymv());
  // Signature: inputs by const ref, output by ref.
  EXPECT_NE(Src.find("void ssymv_systec(const Tensor &A, "
                     "const Tensor &x, Tensor &y)"),
            std::string::npos);
  // Diagonal split materialization.
  EXPECT_NE(Src.find("A.splitDiagonal(Partition::parse(2, \"{0,1}\"))"),
            std::string::npos);
  // Sparse walker over the row level with the lifted triangle bound.
  EXPECT_NE(Src.find("A_nondiag_l1.Crd["), std::string::npos);
  EXPECT_NE(Src.find("break;  // lifted upper bound"), std::string::npos);
  // Workspace accumulation.
  EXPECT_NE(Src.find("double w_0 = 0;"), std::string::npos);
  EXPECT_NE(Src.find("y.vals()[j] += w_0;"), std::string::npos);
}

TEST(Codegen, MttkrpStructure) {
  std::string Src = emitFor(makeMttkrp(3));
  // Factor-of-two distributive grouping in the off-diagonal nest.
  EXPECT_NE(Src.find("+= 2 * ("), std::string::npos);
  // Concordized transposed factor matrix.
  EXPECT_NE(Src.find("Tensor B_T = B.transposed({1, 0}"),
            std::string::npos);
  // Hoisted shared read of A.
  EXPECT_NE(Src.find("= A_nondiag.val("), std::string::npos);
}

TEST(Codegen, SsyrkReplicationEpilogue) {
  std::string Src = emitFor(makeSsyrk());
  EXPECT_NE(Src.find("replicateSymmetric(C, Partition::parse(2, "
                     "\"{0,1}\"));"),
            std::string::npos);
}

TEST(Codegen, BellmanFordUsesStdMin) {
  std::string Src = emitFor(makeBellmanFord());
  EXPECT_NE(Src.find("std::min("), std::string::npos);
  EXPECT_EQ(Src.find("+="), std::string::npos)
      << "min-reduction must not emit additive updates";
}

TEST(Codegen, LutEmissionFor4d) {
  std::string Src = emitFor(makeMttkrp(4));
  EXPECT_NE(Src.find("static const double lut0[]"), std::string::npos);
  EXPECT_NE(Src.find("lut0[((i == k) ? 1 : 0)"), std::string::npos);
}

TEST(Codegen, GuardedTemporariesArePredeclared) {
  // Temporaries defined under block conditions must be declared in the
  // enclosing scope (C++ scoping, unlike the executor's flat slots).
  std::string Src = emitFor(makeMttkrp(3));
  size_t Decl = Src.find("double t_A_i_k_l = 0;");
  if (Decl == std::string::npos)
    return; // no guarded definition survived restructuring; fine
  size_t Use = Src.find("t_A_i_k_l)", Decl);
  EXPECT_NE(Use, std::string::npos);
}

/// Emits every paper kernel and syntax-checks it with the compiler that
/// built this test.
class CodegenCompiles : public ::testing::TestWithParam<unsigned> {};

TEST_P(CodegenCompiles, SyntaxChecks) {
#if !defined(SYSTEC_SOURCE_DIR) || !defined(SYSTEC_CXX)
  GTEST_SKIP() << "compiler paths not configured";
#else
  std::vector<Einsum> Kernels{makeSsymv(), makeBellmanFord(), makeSyprd(),
                              makeSsyrk(), makeTtm(),         makeMttkrp(3),
                              makeMttkrp(4), makeMttkrp(5)};
  const Einsum &E = Kernels[GetParam()];
  std::string Src = emitFor(E);
  std::string Path = ::testing::TempDir() + "/systec_gen_" + E.Name +
                     ".cpp";
  {
    std::ofstream Out(Path);
    Out << Src;
  }
  std::string Cmd = std::string(SYSTEC_CXX) +
                    " -std=c++20 -fsyntax-only -I" + SYSTEC_SOURCE_DIR +
                    "/src " + Path;
  int Rc = std::system(Cmd.c_str());
  EXPECT_EQ(Rc, 0) << "generated code failed to parse:\n" << Src;
#endif
}

INSTANTIATE_TEST_SUITE_P(AllKernels, CodegenCompiles,
                         ::testing::Range(0u, 8u));
