//===- tests/codegen_test.cpp ---------------------------------*- C++ -*-===//
///
/// Tests for the C++ source backend: structural golden checks on the
/// emitted kernels, and a syntax check of every emitted kernel with the
/// same compiler that built the library.
///
//===----------------------------------------------------------------------===//

#include "core/Codegen.h"
#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "runtime/Executor.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace systec;

namespace {

std::string emitFor(const Einsum &E, PipelineOptions Opt = {}) {
  return emitCpp(compileEinsum(E, Opt).Optimized);
}

} // namespace

TEST(Codegen, SsymvStructure) {
  std::string Src = emitFor(makeSsymv());
  // Signature: inputs by const ref, output by ref.
  EXPECT_NE(Src.find("void ssymv_systec(const Tensor &A, "
                     "const Tensor &x, Tensor &y)"),
            std::string::npos);
  // Diagonal split materialization.
  EXPECT_NE(Src.find("A.splitDiagonal(Partition::parse(2, \"{0,1}\"))"),
            std::string::npos);
  // Sparse walker over the row level with the lifted triangle bound.
  EXPECT_NE(Src.find("A_nondiag_l1.Crd["), std::string::npos);
  EXPECT_NE(Src.find("break;  // lifted upper bound"), std::string::npos);
  // Workspace accumulation.
  EXPECT_NE(Src.find("double w_0 = 0;"), std::string::npos);
  EXPECT_NE(Src.find("y.vals()[j] += w_0;"), std::string::npos);
}

TEST(Codegen, MttkrpStructure) {
  std::string Src = emitFor(makeMttkrp(3));
  // Factor-of-two distributive grouping in the off-diagonal nest.
  EXPECT_NE(Src.find("+= 2 * ("), std::string::npos);
  // Concordized transposed factor matrix.
  EXPECT_NE(Src.find("Tensor B_T = B.transposed({1, 0}"),
            std::string::npos);
  // Hoisted shared read of A.
  EXPECT_NE(Src.find("= A_nondiag.val("), std::string::npos);
}

TEST(Codegen, SsyrkReplicationEpilogue) {
  std::string Src = emitFor(makeSsyrk());
  EXPECT_NE(Src.find("replicateSymmetric(C, Partition::parse(2, "
                     "\"{0,1}\"));"),
            std::string::npos);
}

TEST(Codegen, BellmanFordUsesStdMin) {
  std::string Src = emitFor(makeBellmanFord());
  EXPECT_NE(Src.find("std::min("), std::string::npos);
  EXPECT_EQ(Src.find("+="), std::string::npos)
      << "min-reduction must not emit additive updates";
}

TEST(Codegen, LutEmissionFor4d) {
  std::string Src = emitFor(makeMttkrp(4));
  EXPECT_NE(Src.find("static const double lut0[]"), std::string::npos);
  EXPECT_NE(Src.find("lut0[((i == k) ? 1 : 0)"), std::string::npos);
}

TEST(Codegen, GuardedTemporariesArePredeclared) {
  // Temporaries defined under block conditions must be declared in the
  // enclosing scope (C++ scoping, unlike the executor's flat slots).
  std::string Src = emitFor(makeMttkrp(3));
  size_t Decl = Src.find("double t_A_i_k_l = 0;");
  if (Decl == std::string::npos)
    return; // no guarded definition survived restructuring; fine
  size_t Use = Src.find("t_A_i_k_l)", Decl);
  EXPECT_NE(Use, std::string::npos);
}

/// Emits every paper kernel and fully compiles it (to an object file,
/// not just a parse) with the compiler that built this test — template
/// instantiation and overload resolution catch bitrot that
/// -fsyntax-only lets through.
class CodegenCompiles : public ::testing::TestWithParam<unsigned> {};

TEST_P(CodegenCompiles, CompilesToObject) {
#if !defined(SYSTEC_SOURCE_DIR) || !defined(SYSTEC_CXX)
  GTEST_SKIP() << "compiler paths not configured";
#else
  std::vector<Einsum> Kernels{makeSsymv(), makeBellmanFord(), makeSyprd(),
                              makeSsyrk(), makeTtm(),         makeMttkrp(3),
                              makeMttkrp(4), makeMttkrp(5)};
  const Einsum &E = Kernels[GetParam()];
  std::string Src = emitFor(E);
  std::string Path = ::testing::TempDir() + "/systec_gen_" + E.Name +
                     ".cpp";
  std::string Obj = ::testing::TempDir() + "/systec_gen_" + E.Name + ".o";
  {
    std::ofstream Out(Path);
    Out << Src;
  }
  std::string Cmd = std::string(SYSTEC_CXX) + " -std=c++20 -c -o " + Obj +
                    " -I" + SYSTEC_SOURCE_DIR + "/src " + Path;
  int Rc = std::system(Cmd.c_str());
  EXPECT_EQ(Rc, 0) << "generated code failed to compile:\n" << Src;
  std::remove(Obj.c_str());
#endif
}

INSTANTIATE_TEST_SUITE_P(AllKernels, CodegenCompiles,
                         ::testing::Range(0u, 8u));

//===----------------------------------------------------------------------===//
// Native (JIT) TU emission
//===----------------------------------------------------------------------===//

namespace {

/// Binds a paper-kernel workload and prepares with the native engine
/// leading, returning the emitted C-ABI TU (populated by tryPrepare
/// even when the subsequent JIT build cannot run).
std::string emitNativeFor(const std::string &Name) {
  Rng R(101);
  Einsum E;
  std::map<std::string, Tensor> Inputs;
  std::vector<int64_t> OutDims;
  if (Name == "ssymv") {
    E = makeSsymv();
    Inputs.emplace("A", generateSymmetricTensor(2, 20, 80, R,
                                                TensorFormat::csf(2)));
    Inputs.emplace("x", generateDenseVector(20, R));
    OutDims = {20};
  } else if (Name == "syprd") {
    E = makeSyprd();
    Inputs.emplace("A", generateSymmetricTensor(2, 20, 80, R,
                                                TensorFormat::csf(2)));
    Inputs.emplace("x", generateDenseVector(20, R));
    OutDims = {1};
  } else {
    E = makeMttkrp(3);
    Inputs.emplace("A", generateSymmetricTensor(3, 9, 72, R,
                                                TensorFormat::csf(3)));
    Inputs.emplace("B", generateDenseMatrix(9, 4, R));
    OutDims = {9, 4};
  }
  Tensor Out = Tensor::dense(OutDims, 0.0);
  ExecOptions Opt;
  Opt.Engines = {Engine::Native, Engine::Fused, Engine::Interp};
  Executor Ex(compileEinsum(E).Optimized, Opt);
  for (auto &[N, T] : Inputs)
    Ex.bind(N, &T);
  Ex.bind(E.Output->tensorName(), &Out);
  Status S = Ex.tryPrepare();
  EXPECT_TRUE(S.ok()) << S.str();
  return Ex.nativeSource();
}

} // namespace

/// The emitted native TU must be self-contained: it compiles as a
/// standalone translation unit with no include path at all (the C ABI
/// structs are embedded in the source — that embedding IS the cache's
/// compatibility contract).
class NativeTUCompiles : public ::testing::TestWithParam<const char *> {};

TEST_P(NativeTUCompiles, SelfContained) {
#ifndef SYSTEC_CXX
  GTEST_SKIP() << "compiler paths not configured";
#else
  std::string Src = emitNativeFor(GetParam());
  ASSERT_FALSE(Src.empty());
  EXPECT_NE(Src.find("extern \"C\""), std::string::npos);
  EXPECT_NE(Src.find("systec_native_run"), std::string::npos);
  std::string Path = ::testing::TempDir() + "/systec_native_" +
                     GetParam() + ".cpp";
  std::string Obj = ::testing::TempDir() + "/systec_native_" + GetParam() +
                    ".o";
  {
    std::ofstream OutF(Path);
    OutF << Src;
  }
  // Deliberately no -I: a TU that needs one is a broken contract.
  std::string Cmd = std::string(SYSTEC_CXX) + " -std=c++17 -c -o " + Obj +
                    " -w " + Path;
  int Rc = std::system(Cmd.c_str());
  EXPECT_EQ(Rc, 0) << "native TU failed to compile:\n" << Src;
  std::remove(Obj.c_str());
#endif
}

INSTANTIATE_TEST_SUITE_P(PaperKernels, NativeTUCompiles,
                         ::testing::Values("ssymv", "syprd", "mttkrp3"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });
