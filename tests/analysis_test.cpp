//===- tests/analysis_test.cpp --------------------------------*- C++ -*-===//
///
/// Tests for symmetry analysis: chain discovery from input partitions,
/// rhs-invariance detection (visible output symmetry like SSYRK and
/// invisible contraction symmetry), and the normalizer.
///
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "core/Normalize.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace systec;

TEST(Analysis, SsymvChain) {
  SymmetryAnalysis A = analyzeSymmetry(makeSsymv());
  ASSERT_EQ(A.Chains.size(), 1u);
  std::vector<std::string> Expect{"i", "j"};
  EXPECT_EQ(A.Chains[0].Names, Expect);
  EXPECT_FALSE(A.OutputSymmetry.hasSymmetry());
}

TEST(Analysis, BellmanFordChainOverMinPlus) {
  SymmetryAnalysis A = analyzeSymmetry(makeBellmanFord());
  ASSERT_EQ(A.Chains.size(), 1u);
  std::vector<std::string> Expect{"i", "j"};
  EXPECT_EQ(A.Chains[0].Names, Expect);
}

TEST(Analysis, SyprdChain) {
  SymmetryAnalysis A = analyzeSymmetry(makeSyprd());
  ASSERT_EQ(A.Chains.size(), 1u);
  EXPECT_EQ(A.Chains[0].Names.size(), 2u);
  EXPECT_FALSE(A.OutputSymmetry.hasSymmetry());
}

TEST(Analysis, SsyrkVisibleOutputSymmetryFromRhsInvariance) {
  // A is NOT symmetric; the chain comes from rhs invariance under the
  // output index swap (paper Example 3.1 / Section 5.2.4).
  SymmetryAnalysis A = analyzeSymmetry(makeSsyrk());
  ASSERT_EQ(A.Chains.size(), 1u);
  std::vector<std::string> Expect{"i", "j"};
  EXPECT_EQ(A.Chains[0].Names, Expect);
  EXPECT_TRUE(A.OutputSymmetry.hasSymmetry());
  EXPECT_TRUE(A.OutputSymmetry.samePart(0, 1));
}

TEST(Analysis, TtmChainAndVisibleOutput) {
  SymmetryAnalysis A = analyzeSymmetry(makeTtm());
  ASSERT_EQ(A.Chains.size(), 1u);
  std::vector<std::string> Expect{"j", "k", "l"};
  EXPECT_EQ(A.Chains[0].Names, Expect);
  // C[i,j,l]: positions 1 and 2 are symmetric ({{j,l}} in the paper).
  EXPECT_TRUE(A.OutputSymmetry.hasSymmetry());
  EXPECT_TRUE(A.OutputSymmetry.samePart(1, 2));
  EXPECT_FALSE(A.OutputSymmetry.samePart(0, 1));
}

TEST(Analysis, MttkrpChains) {
  for (unsigned Ord = 3; Ord <= 5; ++Ord) {
    SymmetryAnalysis A = analyzeSymmetry(makeMttkrp(Ord));
    ASSERT_EQ(A.Chains.size(), 1u) << "order " << Ord;
    EXPECT_EQ(A.Chains[0].Names.size(), Ord);
    EXPECT_EQ(A.Chains[0].Names[0], "i");
    EXPECT_FALSE(A.OutputSymmetry.hasSymmetry());
  }
}

TEST(Analysis, InvisibleContractionSymmetryWithoutSymmetricInput) {
  // B[i] += A[i,j] * A[i,k]: swapping j,k leaves the rhs invariant even
  // though A is asymmetric (paper Example 3.1, invisible case).
  Einsum E = parseEinsum("rowsq", "B[i] += A[i,j] * A[i,k]");
  E.LoopOrder = {"i", "k", "j"};
  SymmetryAnalysis A = analyzeSymmetry(E);
  ASSERT_EQ(A.Chains.size(), 1u);
  std::vector<std::string> Expect{"j", "k"};
  EXPECT_EQ(A.Chains[0].Names, Expect);
}

TEST(Analysis, OutputSymmetryRequiresRhsInvariancePerPair) {
  // Regression (found by the einsum fuzzer): in
  // O[d,c,b] += A[d,c,b] * B[b] all three output names share A's
  // chain, but only the pair not touching B's operand is a visible
  // output symmetry.
  Einsum E = parseEinsum("fuzz37", "O[d,c,b] += A[d,c,b] * B[b]");
  E.LoopOrder = {"b", "d", "c"};
  E.declare("A", TensorFormat::csf(3));
  E.setSymmetry("A", Partition::full(3));
  E.declare("B", TensorFormat::dense(1));
  SymmetryAnalysis A = analyzeSymmetry(E);
  ASSERT_EQ(A.Chains.size(), 1u);
  EXPECT_TRUE(A.OutputSymmetry.samePart(0, 1));  // d <-> c invariant
  EXPECT_FALSE(A.OutputSymmetry.samePart(1, 2)); // c <-> b changes B
  EXPECT_FALSE(A.OutputSymmetry.samePart(0, 2));
}

TEST(Analysis, NoSymmetryNoChains) {
  Einsum E = parseEinsum("spmm", "C[i,j] += A[i,k] * B[k,j]");
  E.LoopOrder = {"j", "k", "i"};
  SymmetryAnalysis A = analyzeSymmetry(E);
  EXPECT_TRUE(A.Chains.empty());
  EXPECT_FALSE(A.hasSymmetry());
}

TEST(Analysis, AsymmetricMatrixNoSpuriousChain) {
  // SYPRD-shaped kernel without the symmetry annotation: no chain
  // (A[i,j] != A[j,i] in general).
  Einsum E = parseEinsum("quad", "y[] += x[i] * A[i,j] * x[j]");
  E.LoopOrder = {"j", "i"};
  SymmetryAnalysis A = analyzeSymmetry(E);
  EXPECT_TRUE(A.Chains.empty());
}

TEST(Analysis, PartialSymmetryTwoChains) {
  // A with {{0,1},{2,3}} symmetry yields two independent chains.
  Einsum E = parseEinsum("p4", "y[] += A[i,j,k,l]");
  E.LoopOrder = {"l", "k", "j", "i"};
  E.declare("A", TensorFormat::dense(4));
  E.setSymmetry("A", Partition::parse(4, "{0,1}{2,3}"));
  SymmetryAnalysis A = analyzeSymmetry(E);
  ASSERT_EQ(A.Chains.size(), 2u);
  EXPECT_EQ(A.Chains[0].Names.size(), 2u);
  EXPECT_EQ(A.Chains[1].Names.size(), 2u);
}

TEST(Analysis, ChainOrderFollowsLoopDepth) {
  // The chain ascends toward inner loops regardless of name order.
  Einsum E = parseEinsum("s", "y[b] += A[b,a] * x[a]");
  E.LoopOrder = {"a", "b"};
  E.declare("A", TensorFormat::csf(2));
  E.setSymmetry("A", Partition::full(2));
  SymmetryAnalysis A = analyzeSymmetry(E);
  ASSERT_EQ(A.Chains.size(), 1u);
  // b is the inner loop -> first chain element.
  std::vector<std::string> Expect{"b", "a"};
  EXPECT_EQ(A.Chains[0].Names, Expect);
}

TEST(Analysis, IndexRankMatchesChainPosition) {
  SymmetryAnalysis A = analyzeSymmetry(makeMttkrp(3));
  EXPECT_EQ(A.IndexRank.at("i"), 0);
  EXPECT_EQ(A.IndexRank.at("k"), 1);
  EXPECT_EQ(A.IndexRank.at("l"), 2);
  EXPECT_EQ(A.IndexRank.count("j"), 0u);
}

TEST(Analysis, StrSummary) {
  SymmetryAnalysis A = analyzeSymmetry(makeSsymv());
  EXPECT_NE(A.str().find("i <= j"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Normalizer
//===----------------------------------------------------------------------===//

TEST(Normalizer, SortsSymmetricModes) {
  Einsum E = makeMttkrp(3);
  SymmetryAnalysis A = analyzeSymmetry(E);
  Normalizer N(E, A.IndexRank);
  ExprPtr Acc = Expr::access("A", {"l", "i", "k"});
  EXPECT_EQ(N.normalizeAccess(Acc)->str(), "A[i, k, l]");
}

TEST(Normalizer, LeavesAsymmetricModesAlone) {
  Einsum E = parseEinsum("s", "C[i,j] += A[i,k] * B[k,j]");
  Normalizer N(E, {});
  ExprPtr Acc = Expr::access("A", {"k", "i"});
  EXPECT_EQ(N.normalizeAccess(Acc)->str(), "A[k, i]");
}

TEST(Normalizer, SortsCommutativeOperands) {
  Einsum E = makeMttkrp(3);
  SymmetryAnalysis A = analyzeSymmetry(E);
  Normalizer N(E, A.IndexRank);
  ExprPtr Ex = Expr::call(OpKind::Mul, {Expr::access("B", {"l", "j"}),
                                        Expr::access("B", {"k", "j"}),
                                        Expr::access("A", {"i", "k", "l"})});
  EXPECT_EQ(N.normalizeExpr(Ex)->str(),
            "A[i, k, l] * B[k, j] * B[l, j]");
}

TEST(Normalizer, OperandSortUsesChainRanks) {
  // B[k,j] sorts before B[l,j] because rank(k) < rank(l).
  Einsum E = makeMttkrp(3);
  SymmetryAnalysis A = analyzeSymmetry(E);
  Normalizer N(E, A.IndexRank);
  EXPECT_LT(N.sortKey(Expr::access("B", {"k", "j"})),
            N.sortKey(Expr::access("B", {"l", "j"})));
}

TEST(Normalizer, SwappedFormsCollapse) {
  // The SYPRD invariance: x[j]*A[j,i]*x[i] normalizes to the same form
  // as x[i]*A[i,j]*x[j].
  Einsum E = makeSyprd();
  SymmetryAnalysis A = analyzeSymmetry(E);
  Normalizer N(E, A.IndexRank);
  ExprPtr F1 = Expr::call(OpKind::Mul, {Expr::access("x", {"i"}),
                                        Expr::access("A", {"i", "j"}),
                                        Expr::access("x", {"j"})});
  ExprPtr F2 = Expr::call(OpKind::Mul, {Expr::access("x", {"j"}),
                                        Expr::access("A", {"j", "i"}),
                                        Expr::access("x", {"i"})});
  EXPECT_TRUE(Expr::equal(N.normalizeExpr(F1), N.normalizeExpr(F2)));
}
