//===- tests/microkernel_test.cpp -----------------------------*- C++ -*-===//
///
/// Unit tests for the runtime specialization layer
/// (runtime/MicroKernels.h): each fused shape — sparse axpy/dot, dense
/// scale-accumulate, sparse-sparse two-finger merge, nest fusion — is
/// checked bit-identical to the generic interpreted path with exact
/// counter parity, including empty rows, non-zero fill (min-plus),
/// multiplicity handling, and the deliberate fallbacks. Also covers the
/// expression-VM deep-stack fix and the stateful SparseLoad locator.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "ir/Kernel.h"
#include "kernels/Kernels.h"
#include "runtime/Executor.h"
#include "support/Counters.h"
#include "support/Random.h"
#include "tensor/Tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <optional>

using namespace systec;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// A CSC matrix with an empty column and an empty row:
///   [ 1 0 0 2 ]
///   [ 0 0 0 0 ]
///   [ 3 0 4 0 ]
///   [ 0 0 5 6 ]
Tensor gappyCsc(double Fill = 0.0) {
  Coo C({4, 4});
  C.add({0, 0}, 1);
  C.add({2, 0}, 3);
  C.add({2, 2}, 4);
  C.add({3, 2}, 5);
  C.add({0, 3}, 2);
  C.add({3, 3}, 6);
  return Tensor::fromCoo(std::move(C), TensorFormat::csf(2), Fill);
}

/// Quantizes stored values to small integers so sums are exact and
/// bit-identical across task decompositions (thread-count sweeps).
void quantizeIntegers(Tensor &T) {
  for (double &V : T.vals())
    if (!std::isinf(V))
      V = std::floor(V * 8);
}

Tensor denseVec(std::vector<double> V) {
  Tensor T = Tensor::dense({static_cast<int64_t>(V.size())});
  T.vals() = std::move(V);
  return T;
}

void expectBitIdentical(const Tensor &A, const Tensor &B,
                        const char *What) {
  ASSERT_EQ(A.vals().size(), B.vals().size()) << What;
  for (size_t I = 0; I < A.vals().size(); ++I)
    EXPECT_EQ(A.vals()[I], B.vals()[I]) << What << " element " << I;
}

void expectCountersEqual(const CounterSnapshot &G,
                         const CounterSnapshot &F, const char *What) {
  EXPECT_EQ(G.SparseReads, F.SparseReads) << What;
  EXPECT_EQ(G.Reductions, F.Reductions) << What;
  EXPECT_EQ(G.ScalarOps, F.ScalarOps) << What;
  EXPECT_EQ(G.OutputWrites, F.OutputWrites) << What;
}

/// Runs \p K twice — micro-kernels off and on — over the same bindings
/// produced by \p Bind, asserting bit-identical outputs and exact
/// counter parity. Returns the fused executor's specialization stats.
MicroKernelStats
compareEngines(const Kernel &K,
               const std::function<void(Executor &, Tensor &)> &Bind,
               Tensor OutTemplate, const char *What) {
  MicroKernelStats Stats;
  Tensor OutGeneric = OutTemplate, OutFused = std::move(OutTemplate);
  CounterSnapshot SnapGeneric, SnapFused;
  for (bool Fused : {false, true}) {
    ExecOptions O;
    O.EnableMicroKernels = Fused;
    Executor E(K, O);
    Tensor &Out = Fused ? OutFused : OutGeneric;
    Bind(E, Out);
    E.prepare();
    counters().reset();
    setCountersEnabled(true);
    E.run();
    (Fused ? SnapFused : SnapGeneric) = counters().snapshot();
    if (Fused)
      Stats = E.microKernelStats();
  }
  expectBitIdentical(OutGeneric, OutFused, What);
  expectCountersEqual(SnapGeneric, SnapFused, What);
  return Stats;
}

Kernel spmvKernel(std::optional<OpKind> Reduce = OpKind::Add,
                  OpKind Combine = OpKind::Mul) {
  Kernel K;
  K.Name = "spmv";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loops(
      {"j", "i"},
      Stmt::assign(Expr::access("y", {"i"}), Reduce,
                   Expr::call(Combine, {Expr::access("A", {"i", "j"}),
                                        Expr::access("x", {"j"})})));
  return K;
}

} // namespace

//===----------------------------------------------------------------------===//
// Fused shapes vs. the generic oracle
//===----------------------------------------------------------------------===//

TEST(MicroKernels, SparseAxpyBitIdentical) {
  Tensor A = gappyCsc();
  Tensor X = denseVec({1.5, -2, 0.25, 3});
  MicroKernelStats S = compareEngines(
      spmvKernel(),
      [&](Executor &E, Tensor &Out) {
        E.bind("A", &A).bind("x", &X).bind("y", &Out);
      },
      Tensor::dense({4}), "sparse axpy");
  EXPECT_GT(S.SpecializedLoops, 0u);
  EXPECT_GT(S.InnermostFused, 0u);
  EXPECT_EQ(S.GenericLoops, 0u);
}

TEST(MicroKernels, SparseDotScalarWorkspace) {
  // w = sum_i A[i,j] * x[i] accumulated into a scalar workspace, then
  // y[j] += w: the ssymv-style def / inner-loop / tail-assign nest.
  Kernel K;
  K.Name = "dot";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loop(
      "j",
      Stmt::block(
          {Stmt::defScalar("w", Expr::lit(0.0)),
           Stmt::loop("i", Stmt::assign(Expr::scalar("w"), OpKind::Add,
                                        Expr::call(OpKind::Mul,
                                                   {Expr::access("A", {"i", "j"}),
                                                    Expr::access("x", {"i"})}))),
           Stmt::assign(Expr::access("y", {"j"}), OpKind::Add,
                        Expr::scalar("w"))}));
  Tensor A = gappyCsc();
  Tensor X = denseVec({1, 2, 3, 4});
  MicroKernelStats S = compareEngines(
      K,
      [&](Executor &E, Tensor &Out) {
        E.bind("A", &A).bind("x", &X).bind("y", &Out);
      },
      Tensor::dense({4}), "sparse dot");
  EXPECT_EQ(S.SpecializedLoops, 2u); // fused nest over fused inner loop
  EXPECT_EQ(S.InnermostFused, 1u);
}

TEST(MicroKernels, MinPlusFillRespected) {
  // Bellman-Ford shape: y[i] min= A[i,j] + d[j] with fill = inf.
  Tensor A = gappyCsc(Inf);
  Tensor D = denseVec({0.5, 10, 2, 1});
  Tensor Out = Tensor::dense({4});
  Out.setAllValues(Inf);
  MicroKernelStats S = compareEngines(
      spmvKernel(OpKind::Min, OpKind::Add),
      [&](Executor &E, Tensor &O) {
        E.bind("A", &A).bind("x", &D).bind("y", &O);
      },
      std::move(Out), "min-plus");
  EXPECT_GT(S.SpecializedLoops, 0u);
}

TEST(MicroKernels, SparseSparseMergeIntersects) {
  // O[j] += A[i,j] * B[i,j]: both operands sparse, so the inner loop
  // is a two-walker intersection (two-finger merge in the fused path,
  // per-element locate in the generic one). Includes empty fibers and
  // partial overlap.
  Einsum E = parseEinsum("merge", "O[j] += A[i,j] * B[i,j]");
  E.LoopOrder = {"j", "i"};
  E.declare("A", TensorFormat::csf(2));
  E.declare("B", TensorFormat::csf(2));
  CompileResult R = compileEinsum(E);

  Tensor A = gappyCsc();
  Coo BC({4, 4});
  BC.add({0, 0}, 2);   // overlaps (0,0)
  BC.add({1, 0}, 7);   // A has no (1,0)
  BC.add({3, 2}, -1);  // overlaps (3,2)
  BC.add({1, 1}, 4);   // column empty in A
  Tensor B = Tensor::fromCoo(std::move(BC), TensorFormat::csf(2));

  MicroKernelStats S = compareEngines(
      R.Naive,
      [&](Executor &Ex, Tensor &Out) {
        Ex.bind("A", &A).bind("B", &B).bind("O", &Out);
      },
      Tensor::dense({4}), "sparse-sparse merge");
  EXPECT_GT(S.SpecializedLoops, 0u);
  EXPECT_GT(S.InnermostFused, 0u);
}

TEST(MicroKernels, DenseScaleAccumulateStrided) {
  // ttm-style innermost dense loop with strided output and several
  // statements per iteration, via the real ttm pipeline (covers nest
  // fusion over a dense range driver and invariant guards in the
  // diagonal kernel).
  Rng R(11);
  CompileResult C = compileEinsum(makeTtm());
  Tensor A = generateSymmetricTensor(3, 12, 150, R, TensorFormat::csf(3));
  Tensor B = generateDenseMatrix(12, 5, R);
  MicroKernelStats S = compareEngines(
      C.Optimized,
      [&](Executor &E, Tensor &Out) {
        E.bind("A", &A).bind("B", &B).bind("C", &Out);
      },
      Tensor::dense({5, 12, 12}), "ttm scale-accumulate");
  EXPECT_GT(S.InnermostFused, 0u);
}

TEST(MicroKernels, MultiplicityFoldsIntoFusedPath) {
  // Mult=2 with an additive reduction folds into the program (y += 2*e)
  // and fuses; outputs must match the generic engine exactly.
  Kernel K;
  K.Name = "mult2";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loops(
      {"j", "i"},
      Stmt::assign(Expr::access("y", {"i"}), OpKind::Add,
                   Expr::call(OpKind::Mul, {Expr::access("A", {"i", "j"}),
                                            Expr::access("x", {"j"})}),
                   /*Multiplicity=*/2));
  Tensor A = gappyCsc();
  Tensor X = denseVec({1, 2, 3, 4});
  MicroKernelStats S = compareEngines(
      K,
      [&](Executor &E, Tensor &Out) {
        E.bind("A", &A).bind("x", &X).bind("y", &Out);
      },
      Tensor::dense({4}), "multiplicity 2");
  EXPECT_GT(S.SpecializedLoops, 0u);
}

TEST(MicroKernels, GeneralMultiplicityFallsBack) {
  // Mult=3 under a Mul-reduction cannot fold; the specializer must
  // leave the loop interpreted and results must still agree.
  Kernel K;
  K.Name = "mult3";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loops(
      {"j", "i"},
      Stmt::assign(Expr::access("y", {"i"}), OpKind::Mul,
                   Expr::access("A", {"i", "j"}),
                   /*Multiplicity=*/3));
  Tensor A = gappyCsc();
  Tensor Out = Tensor::dense({4});
  Out.setAllValues(1.0);
  MicroKernelStats S = compareEngines(
      K,
      [&](Executor &E, Tensor &O) { E.bind("A", &A).bind("y", &O); },
      std::move(Out), "multiplicity 3 fallback");
  EXPECT_GT(S.GenericLoops, 0u);
  EXPECT_EQ(S.InnermostFused, 0u);
}

TEST(MicroKernels, AblationSwitchReportsStats) {
  Tensor A = gappyCsc();
  Tensor X = denseVec({1, 1, 1, 1});
  Tensor Y = Tensor::dense({4});
  ExecOptions Off;
  Off.EnableMicroKernels = false;
  Executor EOff(spmvKernel(), Off);
  EOff.bind("A", &A).bind("x", &X).bind("y", &Y);
  EOff.prepare();
  EXPECT_EQ(EOff.microKernelStats().SpecializedLoops, 0u);
  EXPECT_EQ(EOff.microKernelStats().GenericLoops, 2u);

  counters().reset();
  Executor EOn(spmvKernel());
  EOn.bind("A", &A).bind("x", &X).bind("y", &Y);
  EOn.prepare();
  EXPECT_EQ(EOn.microKernelStats().SpecializedLoops, 2u);
  EXPECT_EQ(EOn.microKernelStats().GenericLoops, 0u);
  // The global ablation counters see the same split.
  EXPECT_EQ(counters().LoopsSpecialized, 2u);
  EXPECT_EQ(counters().LoopsGeneric, 0u);
}

//===----------------------------------------------------------------------===//
// Expression VM: deep stacks and the stateful locator
//===----------------------------------------------------------------------===//

TEST(ExpressionVm, DeepExpressionUsesHeapStack) {
  // A 40-factor product needs a 40-deep operand stack — beyond the
  // VM's fixed buffer (this crashed before the compile-time depth
  // check). The wide product also exceeds the fused factor cap, so the
  // interpreted path is what executes.
  constexpr unsigned Width = 40;
  std::vector<ExprPtr> Args;
  for (unsigned I = 0; I < Width; ++I)
    Args.push_back(Expr::access("b", {"a"}));
  Kernel K;
  K.Name = "deep";
  K.LoopOrder = {"a"};
  K.OutputName = "y";
  K.Body = Stmt::loop("a", Stmt::assign(Expr::access("y", {}),
                                        OpKind::Add,
                                        Expr::call(OpKind::Mul,
                                                   std::move(Args))));
  Tensor B = denseVec({1.0, 2.0, 0.5});
  Tensor Y = Tensor::dense({1});
  Executor E(K);
  E.bind("b", &B).bind("y", &Y);
  E.prepare();
  E.run();
  const double Expected = 1.0 + std::pow(2.0, 40) + std::pow(0.5, 40);
  EXPECT_DOUBLE_EQ(Y.at({0}), Expected);
}

TEST(ExpressionVm, LocatorMatchesRandomAccess) {
  // Non-concordant access A[j,i] under loop order (j, i): the value is
  // fetched by SparseLoad, which now runs through the galloping
  // locator. Results and SparseReads must match the walker-free oracle
  // semantics exactly.
  Kernel K;
  K.Name = "locator";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Body = Stmt::loops(
      {"j", "i"},
      Stmt::assign(Expr::access("y", {}), OpKind::Add,
                   Expr::access("A", {"j", "i"})));
  Tensor A = gappyCsc();
  double Sum = 0;
  A.forEach([&](const std::vector<int64_t> &, double V) { Sum += V; });

  for (bool Walk : {true, false}) {
    ExecOptions O;
    O.EnableSparseWalk = Walk;
    Executor E(K, O);
    Tensor Y = Tensor::dense({1});
    E.bind("A", &A).bind("y", &Y);
    E.prepare();
    counters().reset();
    E.run();
    EXPECT_DOUBLE_EQ(Y.at({0}), Sum) << "walk=" << Walk;
    EXPECT_GT(counters().SparseReads, 0u);
  }
}

TEST(ExpressionVm, LocatorRandomizedAgainstAt) {
  // Hammer locateHinted against locate on random fibers with mixed
  // forward/backward/repeat query patterns.
  Rng R(99);
  Tensor A = generateSymmetricTensor(2, 64, 600, R, TensorFormat::csf(2));
  int64_t Parent = -1, Idx = 0;
  for (int Q = 0; Q < 4000; ++Q) {
    int64_t P = R.nextIndex(64);
    int64_t C = R.nextIndex(64);
    // Bias toward ascending queries under a sticky parent, the pattern
    // the cursor optimizes for.
    if (Q % 4 != 0 && Parent >= 0)
      P = Parent;
    int64_t Want = A.locate(1, P, C);
    int64_t Got = A.locateHinted(1, P, C, Parent, Idx);
    EXPECT_EQ(Want, Got) << "parent " << P << " coord " << C;
  }
}

//===----------------------------------------------------------------------===//
// Paper-kernel nests end to end
//===----------------------------------------------------------------------===//

TEST(MicroKernels, SsymvPipelineBitIdentical) {
  // The full ssymv pipeline: diagonal split, workspace def, fused
  // dense-over-sparse nests, and the replication-free epilogue.
  Rng R(5);
  CompileResult C = compileEinsum(makeSsymv());
  Tensor A = generateSymmetricTensor(2, 30, 120, R, TensorFormat::csf(2));
  Tensor X = generateDenseVector(30, R);
  MicroKernelStats S = compareEngines(
      C.Optimized,
      [&](Executor &E, Tensor &Out) {
        E.bind("A", &A).bind("x", &X).bind("y", &Out);
      },
      Tensor::dense({30}), "ssymv pipeline");
  EXPECT_GT(S.SpecializedLoops, 0u);
  EXPECT_GT(S.InnermostFused, 0u);
}

TEST(MicroKernels, SsyrkTriangleNestBitIdentical) {
  // ssyrk's three-deep nest: aliased dense co-walkers at the top,
  // sparse-over-sparse triangle below, replication epilogue on top.
  Rng R(6);
  CompileResult C = compileEinsum(makeSsyrk());
  Tensor A = generateSymmetricTensor(2, 24, 100, R, TensorFormat::csf(2));
  MicroKernelStats S = compareEngines(
      C.Optimized,
      [&](Executor &E, Tensor &Out) { E.bind("A", &A).bind("C", &Out); },
      Tensor::dense({24, 24}), "ssyrk nest");
  EXPECT_GT(S.SpecializedLoops, 0u);
}

TEST(MicroKernels, MttkrpInlinedDefsBitIdentical) {
  // mttkrp3's inner loop carries single-load scalar defs that the
  // specializer substitutes into the fused statements (and its diagonal
  // kernel guards defs and uses under the same residual conditions).
  Rng R(8);
  CompileResult C = compileEinsum(makeMttkrp(3));
  Tensor A = generateSymmetricTensor(3, 14, 180, R, TensorFormat::csf(3));
  Tensor B = generateDenseMatrix(14, 6, R);
  MicroKernelStats S = compareEngines(
      C.Optimized,
      [&](Executor &E, Tensor &Out) {
        E.bind("A", &A).bind("B", &B).bind("C", &Out);
      },
      Tensor::dense({14, 6}), "mttkrp3 defs");
  EXPECT_GT(S.InnermostFused, 0u);
}

//===----------------------------------------------------------------------===//
// Format-general drivers and contextual operands (PR 3)
//===----------------------------------------------------------------------===//

TEST(MicroKernels, RunLengthDriverBitIdentical) {
  // A RunLength bottom level drives the fused inner loop run by run,
  // expanding every coordinate exactly like the interpreter (and
  // counting one sparse read per coordinate, not per run).
  Rng R(21);
  TensorFormat Rle{{LevelKind::Dense, LevelKind::RunLength}};
  Tensor A = generateSymmetricTensor(2, 30, 60, R, Rle);
  Tensor X = generateDenseVector(30, R);
  MicroKernelStats S = compareEngines(
      spmvKernel(),
      [&](Executor &E, Tensor &Out) {
        E.bind("A", &A).bind("x", &X).bind("y", &Out);
      },
      Tensor::dense({30}), "runlength driver");
  EXPECT_GT(S.FusedRunLengthDrivers, 0u);
  EXPECT_EQ(S.GenericLoops, 0u);
}

TEST(MicroKernels, BandedDriverBitIdentical) {
  // A Banded bottom level drives the fused inner loop over its
  // clamped interval, including columns whose band misses [Lo, Hi].
  Rng R(22);
  TensorFormat Band{{LevelKind::Dense, LevelKind::Banded}};
  Tensor A = generateBandedSymmetric(30, 3, R, Band);
  Tensor X = generateDenseVector(30, R);
  MicroKernelStats S = compareEngines(
      spmvKernel(),
      [&](Executor &E, Tensor &Out) {
        E.bind("A", &A).bind("x", &X).bind("y", &Out);
      },
      Tensor::dense({30}), "banded driver");
  EXPECT_GT(S.FusedBandedDrivers, 0u);
  EXPECT_EQ(S.GenericLoops, 0u);
}

TEST(MicroKernels, SparseLoadOperandFusesWithExactCounters) {
  // y[j] += A[i,j] + s[i]: an additive body over fill-0 operands, so
  // the walker algebra vetoes every coordinate-skipping walker and both
  // sparse accesses compile to SparseLoad. The loops must still fuse —
  // the contextual engine chains the stateful locator — with exact
  // SparseReads parity against the interpreter.
  Kernel K;
  K.Name = "sload";
  K.LoopOrder = {"j", "i"};
  K.OutputName = "y";
  K.Decls["A"] = TensorDecl{"A", 2, TensorFormat::csf(2), 0.0,
                            Partition::none(2), false};
  K.Body = Stmt::loops(
      {"j", "i"},
      Stmt::assign(Expr::access("y", {"j"}), OpKind::Add,
                   Expr::call(OpKind::Add, {Expr::access("A", {"i", "j"}),
                                            Expr::access("s", {"i"})})));
  Tensor A = gappyCsc();
  Coo SC({4});
  SC.add({0}, 2.0);
  SC.add({2}, -1.5);
  Tensor S = Tensor::fromCoo(std::move(SC),
                             TensorFormat{{LevelKind::Sparse}});
  MicroKernelStats St = compareEngines(
      K,
      [&](Executor &E, Tensor &Out) {
        E.bind("A", &A).bind("s", &S).bind("y", &Out);
      },
      Tensor::dense({4}), "sparse-load operand");
  EXPECT_GT(St.FusedSparseLoadFactors, 0u);
  EXPECT_EQ(St.GenericLoops, 0u);
  EXPECT_GT(St.WalkersRejected, 0u)
      << "additive fill-0 body must not skip coordinates";
}

TEST(MicroKernels, ThreeWalkerIntersectionBitIdentical) {
  // O[j] += A[i,j] * B[i,j] * C[i,j]: three sparse operands intersect
  // on i, so the fused inner loop is an N-way multi-finger merge (one
  // driver plus two sparse co-walkers with galloping catch-up). The
  // generic interpreter resolves the co-walkers with per-element
  // locate; positions, values, and SparseReads must match exactly —
  // including candidates where the first co-walker matches and the
  // second does not (its read is charged, the body is skipped).
  Einsum E = parseEinsum("merge3", "O[j] += A[i,j] * B[i,j] * C[i,j]");
  E.LoopOrder = {"j", "i"};
  E.declare("A", TensorFormat::csf(2));
  E.declare("B", TensorFormat::csf(2));
  E.declare("C", TensorFormat::csf(2));
  CompileResult R = compileEinsum(E);

  Tensor A = gappyCsc();
  Coo BC({4, 4});
  BC.add({0, 0}, 2);  // in A and C
  BC.add({2, 0}, 5);  // in A, not in C
  BC.add({1, 0}, 7);  // not in A
  BC.add({3, 2}, -1); // in A and C
  BC.add({3, 3}, 2);  // in A, not in C
  Tensor B = Tensor::fromCoo(std::move(BC), TensorFormat::csf(2));
  Coo CC({4, 4});
  CC.add({0, 0}, 3);
  CC.add({3, 2}, 4);
  CC.add({1, 1}, 9); // only in C
  Tensor C = Tensor::fromCoo(std::move(CC), TensorFormat::csf(2));

  MicroKernelStats S = compareEngines(
      R.Naive,
      [&](Executor &Ex, Tensor &Out) {
        Ex.bind("A", &A).bind("B", &B).bind("C", &C).bind("O", &Out);
      },
      Tensor::dense({4}), "three-walker merge");
  EXPECT_GT(S.FusedNWalkerLoops, 0u);
  EXPECT_GE(S.FusedCoWalkers, 2u);
  EXPECT_EQ(S.GenericLoops, 0u);
}

TEST(MicroKernels, RunLengthAndBandedCoWalkersBitIdentical) {
  // A sparse driver intersecting a structured co-walker: the co-walker
  // resolves positionally by run containment (RunLength) or interval
  // containment (Banded) exactly as the interpreter's locate, including
  // bands that miss the driver's coordinates entirely.
  for (LevelKind CoKind : {LevelKind::RunLength, LevelKind::Banded}) {
    SCOPED_TRACE(CoKind == LevelKind::RunLength ? "runlength co"
                                                : "banded co");
    Einsum E = parseEinsum("comerge", "O[j] += A[i,j] * B[i,j]");
    E.LoopOrder = {"j", "i"};
    E.declare("A", TensorFormat::csf(2));
    TensorFormat CoFmt{{LevelKind::Dense, CoKind}};
    E.declare("B", CoFmt);
    CompileResult R = compileEinsum(E);

    Rng Rand(31);
    Tensor A = gappyCsc();
    Tensor B = generateSymmetricTensor(2, 4, 6, Rand, CoFmt);
    MicroKernelStats S = compareEngines(
        R.Naive,
        [&](Executor &Ex, Tensor &Out) {
          Ex.bind("A", &A).bind("B", &B).bind("O", &Out);
        },
        Tensor::dense({4}), "structured co-walker");
    if (CoKind == LevelKind::RunLength)
      EXPECT_GT(S.FusedRunLengthCoWalkers, 0u);
    else
      EXPECT_GT(S.FusedBandedCoWalkers, 0u);
    EXPECT_EQ(S.GenericLoops, 0u);
  }
}

TEST(MicroKernels, LutOperandsBindTimeAndContextual) {
  // y[] += lut(...) * A[i,j] twice: a lut whose bits mention the inner
  // loop variable must be re-evaluated per element (contextual engine),
  // one over outer indices only binds once per row. Both fuse with
  // values and counters identical to the interpreter (the VM charges no
  // counters for Lut evaluation, so neither may the fused engines).
  for (bool InnerBits : {true, false}) {
    SCOPED_TRACE(InnerBits ? "contextual lut" : "bind-time lut");
    Kernel K;
    K.Name = "lut";
    K.LoopOrder = {"j", "i"};
    K.OutputName = "y";
    ExprPtr Lut =
        InnerBits
            ? Expr::lut({CmpAtom{CmpKind::EQ, "i", "j"}}, {10, 100})
            : Expr::lut({CmpAtom{CmpKind::LE, "j", "j"}}, {5, 7});
    K.Body = Stmt::loops(
        {"j", "i"},
        Stmt::assign(Expr::access("y", {}), OpKind::Add,
                     Expr::call(OpKind::Mul,
                                {std::move(Lut),
                                 Expr::access("A", {"i", "j"})})));
    Tensor A = gappyCsc();
    MicroKernelStats S = compareEngines(
        K,
        [&](Executor &E, Tensor &Out) { E.bind("A", &A).bind("y", &Out); },
        Tensor::dense({1}), "lut operand");
    EXPECT_GT(S.FusedLutFactors, 0u);
    EXPECT_EQ(S.GenericLoops, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Per-row prebinding (row-invariant SparseLoad prefixes)
//===----------------------------------------------------------------------===//

TEST(MicroKernels, PrebindSparseLoadPrefixBitIdentical) {
  // O[b] += A[b,a] + B[a]: the additive fill-0 body vetoes every
  // coordinate-skipping walker, so both operands evaluate as SparseLoad
  // inside the fused inner loop over b. A's top level is indexed by the
  // outer variable a — a row-invariant prefix the engine resolves once
  // per row (PrebindSlots) — and B prebinds entirely. Rows whose prefix
  // is absent (empty fibers) must read as fill with the same per-element
  // SparseReads as the interpreter.
  Einsum E = parseEinsum("prebind", "O[b] += A[b,a] + B[a]");
  E.LoopOrder = {"a", "b"};
  E.declare("A", TensorFormat::csf(2));
  E.declare("B", TensorFormat{{LevelKind::Sparse}});
  CompileResult R = compileEinsum(E);

  Tensor A = gappyCsc();
  Coo BC({4});
  BC.add({0}, 2.0);
  BC.add({3}, -1.0);
  Tensor B = Tensor::fromCoo(std::move(BC), TensorFormat{{LevelKind::Sparse}});
  MicroKernelStats S = compareEngines(
      R.Naive,
      [&](Executor &Ex, Tensor &Out) {
        Ex.bind("A", &A).bind("B", &B).bind("O", &Out);
      },
      Tensor::dense({4}), "prebound sparse loads");
  EXPECT_GT(S.PrebindSlots, 0u);
  EXPECT_GT(S.FusedSparseLoadFactors, 0u);
  EXPECT_EQ(S.GenericLoops, 0u);
}

TEST(MicroKernels, PrebindDeterministicAcrossTaskRanges) {
  // Per-row prebinding under parallel splits: each task context
  // re-derives the prebound locator state at its own bind, so outputs
  // and counters are bit-identical for Threads in {1, 2, 4} under the
  // triangle-balanced schedule — both when the parallel runtime
  // activates the outer loop (prebinding per row inside each task) and
  // when a tiny privatization budget pushes activation down to the
  // inner disjoint-write loop, splitting the fused loop's own [Lo, Hi]
  // range mid-row.
  Rng Rand(77);
  Einsum E = parseEinsum("prebindpar", "O[b] += A[b,a] + B[a]");
  E.LoopOrder = {"a", "b"};
  E.declare("A", TensorFormat::csf(2));
  E.declare("B", TensorFormat{{LevelKind::Sparse}});
  CompileResult R = compileEinsum(E);
  const int64_t N = 40;
  Tensor A = generateSymmetricTensor(2, N, 3 * N, Rand, TensorFormat::csf(2));
  quantizeIntegers(A);
  Coo BC({N});
  for (int64_t K = 0; K < N; K += 3)
    BC.add({K}, static_cast<double>(1 + K % 5));
  Tensor B = Tensor::fromCoo(std::move(BC), TensorFormat{{LevelKind::Sparse}});

  for (size_t Budget : {size_t(1) << 24, size_t(0)}) {
    SCOPED_TRACE(Budget ? "outer-loop tasks" : "inner range splits");
    Tensor First;
    CounterSnapshot FirstSnap;
    bool Have = false;
    for (unsigned Threads : {1u, 2u, 4u}) {
      SCOPED_TRACE("threads " + std::to_string(Threads));
      ExecOptions O;
      O.Threads = Threads;
      O.Schedule = SchedulePolicy::TriangleBalanced;
      O.PrivatizationBudget = Budget;
      Executor Ex(R.Naive, O);
      Tensor Out = Tensor::dense({N});
      Ex.bind("A", &A).bind("B", &B).bind("O", &Out);
      Ex.prepare();
      EXPECT_GT(Ex.microKernelStats().PrebindSlots, 0u);
      counters().reset();
      setCountersEnabled(true);
      Ex.run();
      CounterSnapshot Snap = counters().snapshot();
      if (!Have) {
        First = std::move(Out);
        FirstSnap = Snap;
        Have = true;
        continue;
      }
      expectBitIdentical(First, Out, "prebind determinism");
      expectCountersEqual(FirstSnap, Snap, "prebind determinism");
    }
  }
}

TEST(MicroKernels, LiveScalarReadAfterGuardedWrite) {
  // A scalar accumulated under a dynamic guard and read by a later
  // statement in the same loop: bind-time substitution is impossible,
  // so the reader must observe the slot live, per element, like the
  // interpreter.
  Kernel K;
  K.Name = "live";
  K.LoopOrder = {"i", "j"};
  K.OutputName = "y";
  Cond Tri = Cond::conj({CmpAtom{CmpKind::LE, "i", "j"}});
  K.Body = Stmt::loops(
      {"i", "j"},
      Stmt::block(
          {Stmt::ifThen(Tri, Stmt::assign(Expr::scalar("acc"), OpKind::Add,
                                          Expr::access("x", {"i"}))),
           Stmt::assign(Expr::access("y", {"j"}), OpKind::Add,
                        Expr::scalar("acc"))}));
  Tensor X = denseVec({1, 2, 3, 4});
  MicroKernelStats St = compareEngines(
      K,
      [&](Executor &E, Tensor &Out) { E.bind("x", &X).bind("y", &Out); },
      Tensor::dense({4}), "live scalar");
  EXPECT_GT(St.SpecializedLoops, 0u);
}

//===----------------------------------------------------------------------===//
// Blocked output engine (register/cache-blocked column panels)
//===----------------------------------------------------------------------===//

namespace {

/// ssyrk bindings over a symmetric matrix whose dimension is not a
/// multiple of any panel width, so every run exercises ragged boundary
/// panels.
struct SsyrkFixture {
  CompileResult R;
  Tensor A;
  int64_t N;
  SsyrkFixture(int64_t Dim, uint64_t Seed, bool Quantize) : N(Dim) {
    Rng Rand(Seed);
    R = compileEinsum(makeSsyrk());
    A = generateSymmetricTensor(2, N, 6 * N, Rand, TensorFormat::csf(2));
    if (Quantize)
      quantizeIntegers(A);
  }
  Tensor run(const Kernel &K, const ExecOptions &O, CounterSnapshot &Snap,
             MicroKernelStats &Stats) {
    Executor E(K, O);
    Tensor Out = Tensor::dense({N, N});
    E.bind("A", &A).bind("C", &Out);
    E.prepare();
    Stats = E.microKernelStats();
    counters().reset();
    setCountersEnabled(true);
    E.run();
    Snap = counters().snapshot();
    return Out;
  }
};

} // namespace

TEST(BlockedEngine, SsyrkBitIdenticalAcrossPanelWidths) {
  // The ssyrk triangle nest blocks into column panels; every width —
  // including 1, widths that do not divide the extent, and the
  // auto-selected width — must reproduce the interpreter bit for bit
  // with exactly equal counters. Random (non-integer) data on purpose:
  // bit-identity must hold because the per-cell fold order is
  // preserved, not because the sums happen to be exact.
  SsyrkFixture F(37, 99, /*Quantize=*/false);
  for (const Kernel *K : {&F.R.Naive, &F.R.Optimized}) {
    SCOPED_TRACE(K == &F.R.Naive ? "naive" : "optimized");
    ExecOptions Interp;
    Interp.EnableMicroKernels = false;
    CounterSnapshot SI, SB;
    MicroKernelStats StI, StB;
    Tensor Ref = F.run(*K, Interp, SI, StI);
    for (unsigned W : {0u, 1u, 2u, 3u, 5u, 8u}) {
      SCOPED_TRACE("width " + std::to_string(W));
      ExecOptions O;
      O.BlockWidth = W;
      Tensor Out = F.run(*K, O, SB, StB);
      EXPECT_GT(StB.BlockedLoops, 0u);
      EXPECT_GT(SB.FusedBlockedPanels, 0u);
      expectBitIdentical(Ref, Out, "blocked ssyrk");
      expectCountersEqual(SI, SB, "blocked ssyrk");
    }
    // Ablation: EnableBlocking=false must not install the engine (and
    // the unblocked nest is still bit-identical — the original
    // contract).
    ExecOptions Off;
    Off.EnableBlocking = false;
    Tensor Out = F.run(*K, Off, SB, StB);
    EXPECT_EQ(StB.BlockedLoops, 0u);
    EXPECT_EQ(SB.FusedBlockedPanels, 0u);
    expectBitIdentical(Ref, Out, "unblocked ssyrk");
    expectCountersEqual(SI, SB, "unblocked ssyrk");
  }
}

TEST(BlockedEngine, SsyrkDeterministicAcrossThreadsAndSchedules) {
  // Panel-aligned task splitting: with integer-exact data the blocked
  // ssyrk must be bit-identical and counter-identical for Threads in
  // {1, 2, 4} under both the triangle-balanced and dynamic schedules —
  // each task derives its own panels, and panel boundaries never
  // change per-cell fold order.
  SsyrkFixture F(41, 7, /*Quantize=*/true);
  for (SchedulePolicy Policy :
       {SchedulePolicy::TriangleBalanced, SchedulePolicy::Dynamic}) {
    SCOPED_TRACE(schedulePolicyName(Policy));
    Tensor First;
    CounterSnapshot FirstSnap;
    bool Have = false;
    for (unsigned Threads : {1u, 2u, 4u}) {
      SCOPED_TRACE("threads " + std::to_string(Threads));
      ExecOptions O;
      O.Threads = Threads;
      O.Schedule = Policy;
      CounterSnapshot Snap;
      MicroKernelStats Stats;
      Tensor Out = F.run(F.R.Optimized, O, Snap, Stats);
      EXPECT_GT(Stats.BlockedLoops, 0u);
      if (!Have) {
        First = std::move(Out);
        FirstSnap = Snap;
        Have = true;
        continue;
      }
      expectBitIdentical(First, Out, "blocked thread determinism");
      expectCountersEqual(FirstSnap, Snap, "blocked thread determinism");
    }
  }
}

TEST(BlockedEngine, EmptyColumnsAndEmptyFiber) {
  // Empty fibers and all-empty panels: a matrix with empty columns and
  // rows drives panels whose union range is empty. The direct form
  // skips them; the engine must still match the interpreter exactly.
  Tensor A = gappyCsc();
  CompileResult R = compileEinsum(makeSsyrk());
  for (unsigned W : {0u, 2u, 8u}) {
    SCOPED_TRACE("width " + std::to_string(W));
    ExecOptions Interp, Blk;
    Interp.EnableMicroKernels = false;
    Blk.BlockWidth = W;
    for (const Kernel *K : {&R.Naive, &R.Optimized}) {
      CounterSnapshot SI, SB;
      MicroKernelStats StI, StB;
      Executor EI(*K, Interp), EB(*K, Blk);
      Tensor OutI = Tensor::dense({4, 4}), OutB = Tensor::dense({4, 4});
      EI.bind("A", &A).bind("C", &OutI);
      EB.bind("A", &A).bind("C", &OutB);
      EI.prepare();
      EB.prepare();
      counters().reset();
      setCountersEnabled(true);
      EI.run();
      SI = counters().snapshot();
      counters().reset();
      EB.run();
      SB = counters().snapshot();
      expectBitIdentical(OutI, OutB, "gappy blocked ssyrk");
      expectCountersEqual(SI, SB, "gappy blocked ssyrk");
    }
  }
}

TEST(BlockedEngine, WorkspaceNestAccumulatesInRegisters) {
  // The SpMM-style shape `C[i,k] += A_row(j) * B[j,k]`: the pipeline
  // emits the workspace triple (w = 0; w += ...; C[i,k] += w), whose
  // blocked form keeps the whole panel of workspace cells in registers
  // across the sparse walk and writes each lane back once — the
  // FusedBlockedStores telemetry equals the per-column writes instead
  // of the per-element traffic. Bit-identical with exact counters, at
  // every width, including an extent (13) the widths do not divide.
  Rng Rand(5);
  Einsum E = parseEinsum("spmm", "C[i,k] += A[i,j] * B[j,k]");
  E.LoopOrder = {"i", "k", "j"};
  E.declare("A", TensorFormat::csf(2));
  CompileResult R = compileEinsum(E);
  const int64_t N = 29, KD = 13;
  Tensor A = generateSymmetricTensor(2, N, 5 * N, Rand,
                                     TensorFormat::csf(2));
  Tensor B = generateDenseMatrix(N, KD, Rand);
  auto RunIt = [&](const ExecOptions &O, CounterSnapshot &Snap,
                   MicroKernelStats &Stats) {
    Executor Ex(R.Optimized, O);
    Tensor Out = Tensor::dense({N, KD});
    Ex.bind("A", &A).bind("B", &B).bind("C", &Out);
    Ex.prepare();
    Stats = Ex.microKernelStats();
    counters().reset();
    setCountersEnabled(true);
    Ex.run();
    Snap = counters().snapshot();
    return Out;
  };
  ExecOptions Interp;
  Interp.EnableMicroKernels = false;
  CounterSnapshot SI, SB;
  MicroKernelStats StI, StB;
  Tensor Ref = RunIt(Interp, SI, StI);
  for (unsigned W : {0u, 1u, 3u, 8u}) {
    SCOPED_TRACE("width " + std::to_string(W));
    ExecOptions O;
    O.BlockWidth = W;
    Tensor Out = RunIt(O, SB, StB);
    EXPECT_GT(StB.BlockedLoops, 0u);
    EXPECT_GT(StB.BlockedAccumLoops, 0u)
        << "the workspace triple must take the register-accumulator form";
    EXPECT_GT(SB.FusedBlockedPanels, 0u);
    // One writeback per lane (column), not one per element.
    EXPECT_EQ(SB.FusedBlockedStores, SB.OutputWrites);
    expectBitIdentical(Ref, Out, "blocked spmm");
    expectCountersEqual(SI, SB, "blocked spmm");
  }
}
