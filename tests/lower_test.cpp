//===- tests/lower_test.cpp -----------------------------------*- C++ -*-===//
///
/// Tests for kernel lowering: naive nests, chain condition placement,
/// workspace insertion (4.2.8), diagonal splitting (4.2.9),
/// concordization transposes (4.2.3), and replication epilogues.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace systec;

TEST(LowerNaive, SsymvGolden) {
  Kernel K = lowerNaive(makeSsymv());
  EXPECT_EQ(K.Body->str(1), "  for j=_, i=_\n    y[i] += A[i, j] * x[j]\n");
  EXPECT_TRUE(K.Transposes.empty());
  EXPECT_EQ(K.Epilogue, nullptr);
}

TEST(LowerNaive, SyprdGetsScalarWorkspace) {
  Kernel K = lowerNaive(makeSyprd());
  std::string S = K.Body->str(0);
  EXPECT_NE(S.find("w_0 = 0"), std::string::npos);
  EXPECT_NE(S.find("y[] += w_0"), std::string::npos);
}

TEST(LowerNaive, MttkrpConcordizesFactorMatrix) {
  // B[k,j] with j innermost is discordant; the naive kernel reads the
  // transposed alias B_T[j,k].
  Kernel K = lowerNaive(makeMttkrp(3));
  ASSERT_EQ(K.Transposes.size(), 1u);
  EXPECT_EQ(K.Transposes[0].Alias, "B_T");
  EXPECT_EQ(K.Transposes[0].Source, "B");
  std::vector<unsigned> Perm{1, 0};
  EXPECT_EQ(K.Transposes[0].ModePerm, Perm);
  EXPECT_NE(K.Body->str(0).find("B_T[j, k]"), std::string::npos);
  EXPECT_EQ(K.Body->str(0).find("B[k, j]"), std::string::npos);
}

TEST(LowerSymmetric, SsymvStructure) {
  CompileResult R = compileEinsum(makeSsymv());
  std::string S = R.Optimized.Body->str(0);
  // Off-diagonal nest over the split tensor with a strict triangle.
  EXPECT_NE(S.find("A_nondiag"), std::string::npos);
  EXPECT_NE(S.find("if i < j"), std::string::npos);
  // Workspace for the transposed update (paper 4.2.8).
  EXPECT_NE(S.find("w_0 = 0"), std::string::npos);
  EXPECT_NE(S.find("y[j] += w_0"), std::string::npos);
  // Diagonal nest over A_diag.
  EXPECT_NE(S.find("A_diag"), std::string::npos);
  ASSERT_EQ(R.Optimized.Splits.size(), 2u);
}

TEST(LowerSymmetric, SsymvNoSplitKeepsGroupedBlocks) {
  PipelineOptions Opt;
  Opt.DiagonalSplit = false;
  CompileResult R = compileEinsum(makeSsymv(), Opt);
  EXPECT_TRUE(R.Optimized.Splits.empty());
  std::string S = R.Optimized.Body->str(0);
  // Cross-diagonal grouping produced the i <= j block of paper 4.2.6.
  EXPECT_NE(S.find("if i <= j"), std::string::npos);
}

TEST(LowerSymmetric, SsyrkEpilogueReplicates) {
  CompileResult R = compileEinsum(makeSsyrk());
  ASSERT_NE(R.Optimized.Epilogue, nullptr);
  EXPECT_EQ(R.Optimized.Epilogue->str(0), "replicate C over {0,1}\n");
}

TEST(LowerSymmetric, SsyrkNoSplitWithoutSymmetricInput) {
  // A is asymmetric: nothing to split even though splitting is on.
  CompileResult R = compileEinsum(makeSsyrk());
  EXPECT_TRUE(R.Optimized.Splits.empty());
}

TEST(LowerSymmetric, TtmSplitsAndReplicates) {
  CompileResult R = compileEinsum(makeTtm());
  EXPECT_EQ(R.Optimized.Splits.size(), 2u);
  ASSERT_NE(R.Optimized.Epilogue, nullptr);
  EXPECT_EQ(R.Optimized.Epilogue->str(0), "replicate C over {0}{1,2}\n");
}

TEST(LowerSymmetric, ChainConditionsAtBindingLoops) {
  // MTTKRP-4d: i <= k sits inside loop i, k <= l inside loop k, etc.,
  // so the runtime can lift every atom into a bound.
  CompileResult R = compileEinsum(makeMttkrp(4));
  std::string S = R.Optimized.Body->str(0);
  // Strict chain in the off-diagonal nest, in nesting order m,l,k,i.
  size_t PosLM = S.find("if l < m");
  size_t PosKL = S.find("if k < l");
  size_t PosIK = S.find("if i < k");
  ASSERT_NE(PosLM, std::string::npos);
  ASSERT_NE(PosKL, std::string::npos);
  ASSERT_NE(PosIK, std::string::npos);
  EXPECT_LT(PosLM, PosKL);
  EXPECT_LT(PosKL, PosIK);
}

TEST(LowerSymmetric, MttkrpTransposesBothReads) {
  CompileResult R = compileEinsum(makeMttkrp(3));
  ASSERT_EQ(R.Optimized.Transposes.size(), 1u);
  std::string S = R.Optimized.Body->str(0);
  EXPECT_NE(S.find("B_T[j, i]"), std::string::npos);
  EXPECT_NE(S.find("B_T[j, k]"), std::string::npos);
  EXPECT_NE(S.find("B_T[j, l]"), std::string::npos);
}

TEST(LowerSymmetric, ConcordizeOffKeepsOriginalAccesses) {
  PipelineOptions Opt;
  Opt.Concordize = false;
  CompileResult R = compileEinsum(makeMttkrp(3), Opt);
  EXPECT_TRUE(R.Optimized.Transposes.empty());
  EXPECT_NE(R.Optimized.Body->str(0).find("B[k, j]"), std::string::npos);
}

TEST(LowerSymmetric, WorkspaceOffWritesDirectly) {
  PipelineOptions Opt;
  Opt.Workspace = false;
  CompileResult R = compileEinsum(makeSsymv(), Opt);
  std::string S = R.Optimized.Body->str(0);
  EXPECT_EQ(S.find("w_0"), std::string::npos);
  EXPECT_NE(S.find("y[j] +="), std::string::npos);
}

TEST(LowerSymmetric, DeclsIncludeAliases) {
  CompileResult R = compileEinsum(makeMttkrp(3));
  EXPECT_TRUE(R.Optimized.Decls.count("A_nondiag"));
  EXPECT_TRUE(R.Optimized.Decls.count("A_diag"));
  EXPECT_TRUE(R.Optimized.Decls.count("B_T"));
  // Alias formats follow the source.
  EXPECT_EQ(R.Optimized.Decls.at("A_diag").Format,
            TensorFormat::csf(3));
}

TEST(LowerSymmetric, ReportMentionsAllStages) {
  CompileResult R = compileEinsum(makeSsymv());
  std::string Rep = R.report();
  EXPECT_NE(Rep.find("=== analysis ==="), std::string::npos);
  EXPECT_NE(Rep.find("=== symmetrized ==="), std::string::npos);
  EXPECT_NE(Rep.find("=== naive kernel ==="), std::string::npos);
  EXPECT_NE(Rep.find("=== optimized kernel ==="), std::string::npos);
}

TEST(LowerSymmetric, TtmOffDiagonalHasNoResidualIf) {
  // The strict nest needs no per-element block condition: the canonical
  // chain conditions are lifted into bounds and the equality cases live
  // in the diagonal nest.
  CompileResult R = compileEinsum(makeTtm());
  std::string S = R.Optimized.Body->str(0);
  size_t NonDiag = S.find("A_nondiag");
  ASSERT_NE(NonDiag, std::string::npos);
  // The diagonal nest is a second top-level loop over l.
  size_t DiagNest = S.find("for l=_", 1);
  ASSERT_NE(DiagNest, std::string::npos);
  // No equality conditions appear in the off-diagonal nest.
  EXPECT_EQ(S.substr(0, DiagNest).find("=="), std::string::npos);
}
