//===- tests/endtoend_test.cpp --------------------------------*- C++ -*-===//
///
/// End-to-end correctness: for every paper kernel, across seeds, sizes,
/// formats and pipeline ablations, the compiled symmetric kernel and
/// the naive kernel must agree with the independent dense oracle; the
/// read/op counters must show the paper's canonical-triangle savings
/// (Sections 3.1 and 5.2).
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "kernels/Oracle.h"
#include "runtime/Executor.h"
#include "support/Counters.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace systec;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// One workload: inputs plus output shape/initial value.
struct Workload {
  Einsum E;
  std::map<std::string, Tensor> Inputs;
  std::vector<int64_t> OutDims;
  double OutInit = 0.0;
};

Workload makeWorkload(const std::string &Kernel, uint64_t Seed,
                      int64_t Scale) {
  Rng R(Seed);
  Workload W;
  if (Kernel == "ssymv") {
    W.E = makeSsymv();
    int64_t N = 20 * Scale;
    W.Inputs.emplace("A", generateSymmetricTensor(2, N, 4 * N, R,
                                                  TensorFormat::csf(2)));
    W.Inputs.emplace("x", generateDenseVector(N, R));
    W.OutDims = {N};
  } else if (Kernel == "bellmanford") {
    W.E = makeBellmanFord();
    int64_t N = 20 * Scale;
    W.Inputs.emplace("A", generateSymmetricTensor(2, N, 4 * N, R,
                                                  TensorFormat::csf(2),
                                                  Inf));
    W.Inputs.emplace("d", generateDenseVector(N, R));
    W.OutDims = {N};
    W.OutInit = Inf;
  } else if (Kernel == "syprd") {
    W.E = makeSyprd();
    int64_t N = 20 * Scale;
    W.Inputs.emplace("A", generateSymmetricTensor(2, N, 4 * N, R,
                                                  TensorFormat::csf(2)));
    W.Inputs.emplace("x", generateDenseVector(N, R));
    W.OutDims = {1};
  } else if (Kernel == "ssyrk") {
    W.E = makeSsyrk();
    int64_t N = 15 * Scale;
    W.Inputs.emplace("A", generateSparseMatrix(N, N, 5 * N, R,
                                               TensorFormat::csf(2)));
    W.OutDims = {N, N};
  } else if (Kernel == "ttm") {
    W.E = makeTtm();
    int64_t N = 8 * Scale, Rank = 5;
    W.Inputs.emplace("A", generateSymmetricTensor(3, N, 6 * N, R,
                                                  TensorFormat::csf(3)));
    W.Inputs.emplace("B", generateDenseMatrix(N, Rank, R));
    W.OutDims = {Rank, N, N};
  } else if (Kernel == "mttkrp3" || Kernel == "mttkrp4" ||
             Kernel == "mttkrp5") {
    unsigned Order = Kernel.back() - '0';
    W.E = makeMttkrp(Order);
    int64_t N = (Order == 5 ? 5 : 7) + 2 * Scale, Rank = 4;
    W.Inputs.emplace("A", generateSymmetricTensor(Order, N, 8 * N, R,
                                                  TensorFormat::csf(Order)));
    W.Inputs.emplace("B", generateDenseMatrix(N, Rank, R));
    W.OutDims = {N, Rank};
  } else {
    ADD_FAILURE() << "unknown kernel " << Kernel;
  }
  return W;
}

Tensor runKernel(const Kernel &K, Workload &W,
                 ExecOptions Options = ExecOptions()) {
  Tensor Out = Tensor::dense(W.OutDims, 0.0);
  Out.setAllValues(W.OutInit);
  Executor E(K, Options);
  for (auto &[Name, T] : W.Inputs)
    E.bind(Name, &T);
  E.bind(W.E.Output->tensorName(), &Out);
  E.prepare();
  E.run();
  return Out;
}

Tensor oracle(const Workload &W) {
  std::map<std::string, const Tensor *> In;
  for (const auto &[Name, T] : W.Inputs)
    In[Name] = &T;
  return oracleEval(W.E, In);
}

double tolFor(const Workload &W) {
  // Scale tolerance with the reduction sizes.
  return 1e-9 * std::max<double>(1.0, static_cast<double>(
                                          W.Inputs.at("A").storedCount()));
}

} // namespace

//===----------------------------------------------------------------------===//
// Kernel x seed x scale sweep
//===----------------------------------------------------------------------===//

struct SweepParam {
  std::string Kernel;
  uint64_t Seed;
  int64_t Scale;
};

class KernelSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(KernelSweep, OptimizedAndNaiveMatchOracle) {
  const SweepParam &P = GetParam();
  Workload W = makeWorkload(P.Kernel, P.Seed, P.Scale);
  CompileResult R = compileEinsum(W.E);
  Tensor Ref = oracle(W);
  Tensor Naive = runKernel(R.Naive, W);
  Tensor Opt = runKernel(R.Optimized, W);
  double Tol = tolFor(W);
  EXPECT_LT(Tensor::maxAbsDiff(Naive, Ref), Tol) << "naive kernel";
  EXPECT_LT(Tensor::maxAbsDiff(Opt, Ref), Tol) << "optimized kernel";
}

static std::vector<SweepParam> sweepParams() {
  std::vector<SweepParam> Params;
  for (const char *K : {"ssymv", "bellmanford", "syprd", "ssyrk", "ttm",
                        "mttkrp3", "mttkrp4", "mttkrp5"})
    for (uint64_t Seed : {1u, 2u, 3u})
      for (int64_t Scale : {1, 2})
        Params.push_back(SweepParam{K, Seed, Scale});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSweep,
                         ::testing::ValuesIn(sweepParams()),
                         [](const ::testing::TestParamInfo<SweepParam> &I) {
                           return I.param.Kernel + "_s" +
                                  std::to_string(I.param.Seed) + "_x" +
                                  std::to_string(I.param.Scale);
                         });

//===----------------------------------------------------------------------===//
// Pipeline ablations stay correct
//===----------------------------------------------------------------------===//

struct AblationParam {
  std::string Kernel;
  std::string Variant;
};

class AblationSweep : public ::testing::TestWithParam<AblationParam> {};

TEST_P(AblationSweep, VariantMatchesOracle) {
  const AblationParam &P = GetParam();
  PipelineOptions Opt;
  ExecOptions Exec;
  if (P.Variant == "nosplit")
    Opt.DiagonalSplit = false;
  else if (P.Variant == "noworkspace")
    Opt.Workspace = false;
  else if (P.Variant == "noconcordize")
    Opt.Concordize = false;
  else if (P.Variant == "nolut")
    Opt.SimplicialLut = false;
  else if (P.Variant == "nogroup")
    Opt.GroupAcrossBranches = false;
  else if (P.Variant == "nodistributive")
    Opt.DistributiveGrouping = false;
  else if (P.Variant == "noconsolidate")
    Opt.ConsolidateBlocks = false;
  else if (P.Variant == "novisible")
    Opt.VisibleOutputRestriction = false;
  else if (P.Variant == "nocse")
    Opt.CommonAccessElimination = false;
  else if (P.Variant == "nowalk")
    Exec.EnableSparseWalk = false;
  else if (P.Variant == "nobounds")
    Exec.EnableBoundLifting = false;
  else
    FAIL() << "unknown variant " << P.Variant;

  Workload W = makeWorkload(P.Kernel, 9, 1);
  CompileResult R = compileEinsum(W.E, Opt);
  Tensor Ref = oracle(W);
  Tensor Opt1 = runKernel(R.Optimized, W, Exec);
  EXPECT_LT(Tensor::maxAbsDiff(Opt1, Ref), tolFor(W));
}

static std::vector<AblationParam> ablationParams() {
  std::vector<AblationParam> Params;
  for (const char *K : {"ssymv", "bellmanford", "syprd", "ssyrk", "ttm",
                        "mttkrp3", "mttkrp4"})
    for (const char *V :
         {"nosplit", "noworkspace", "noconcordize", "nolut", "nogroup",
          "nodistributive", "noconsolidate", "novisible", "nocse",
          "nowalk", "nobounds"})
      Params.push_back(AblationParam{K, V});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, AblationSweep, ::testing::ValuesIn(ablationParams()),
    [](const ::testing::TestParamInfo<AblationParam> &I) {
      return I.param.Kernel + "_" + I.param.Variant;
    });

//===----------------------------------------------------------------------===//
// Counter ratios: the paper's 1/n! access and 1/m! compute claims
//===----------------------------------------------------------------------===//

namespace {

struct Measured {
  uint64_t Reads, Ops, Updates;
};

Measured measure(const Kernel &K, Workload &W) {
  counters().reset();
  setCountersEnabled(true);
  runKernel(K, W);
  return Measured{counters().SparseReads, counters().ScalarOps,
                  counters().Reductions};
}

} // namespace

TEST(CounterRatios, SsymvReadsHalve) {
  Workload W = makeWorkload("ssymv", 21, 8);
  CompileResult R = compileEinsum(W.E);
  Measured N = measure(R.Naive, W), O = measure(R.Optimized, W);
  double ReadRatio = double(N.Reads) / double(O.Reads);
  EXPECT_GT(ReadRatio, 1.85);
  EXPECT_LT(ReadRatio, 2.1);
  // No compute savings for SSYMV (paper 5.2.1).
  EXPECT_NEAR(double(N.Ops) / double(O.Ops), 1.0, 0.1);
}

TEST(CounterRatios, SyprdReadsAndOpsHalve) {
  Workload W = makeWorkload("syprd", 22, 8);
  CompileResult R = compileEinsum(W.E);
  Measured N = measure(R.Naive, W), O = measure(R.Optimized, W);
  EXPECT_GT(double(N.Reads) / double(O.Reads), 1.85);
  // "Performs 1/2 of the computations" (paper 5.2.3): update count
  // halves; scalar multiplies shrink less because of the 2x factor.
  EXPECT_GT(double(N.Updates) / double(O.Updates), 1.85);
}

TEST(CounterRatios, SsyrkOpsHalve) {
  Workload W = makeWorkload("ssyrk", 23, 6);
  CompileResult R = compileEinsum(W.E);
  Measured N = measure(R.Naive, W), O = measure(R.Optimized, W);
  // Paper 5.2.4: all of A read, half the computation.
  EXPECT_GT(double(N.Ops) / double(O.Ops), 1.6);
}

TEST(CounterRatios, TtmReadsSixthOpsHalf) {
  Workload W = makeWorkload("ttm", 24, 3);
  CompileResult R = compileEinsum(W.E);
  Measured N = measure(R.Naive, W), O = measure(R.Optimized, W);
  // Paper 5.2.5: accesses 1/6 of A, performs 1/2 the computations.
  EXPECT_GT(double(N.Reads) / double(O.Reads), 4.0);
  EXPECT_GT(double(N.Ops) / double(O.Ops), 1.6);
}

TEST(CounterRatios, Mttkrp3) {
  Workload W = makeWorkload("mttkrp3", 25, 4);
  CompileResult R = compileEinsum(W.E);
  Measured N = measure(R.Naive, W), O = measure(R.Optimized, W);
  EXPECT_GT(double(N.Reads) / double(O.Reads), 4.0);      // toward 6
  EXPECT_GT(double(N.Updates) / double(O.Updates), 1.55); // toward 2
}

TEST(CounterRatios, Mttkrp5DramaticSavings) {
  Workload W = makeWorkload("mttkrp5", 26, 3);
  CompileResult R = compileEinsum(W.E);
  Measured N = measure(R.Naive, W), O = measure(R.Optimized, W);
  // Paper 5.2.6: reads toward 1/120, computation toward 1/24.
  EXPECT_GT(double(N.Reads) / double(O.Reads), 30.0);
  EXPECT_GT(double(N.Updates) / double(O.Updates), 6.0);
}

//===----------------------------------------------------------------------===//
// Alternative formats through the same compiled kernels
//===----------------------------------------------------------------------===//

TEST(Formats, SsymvOverDcscInput) {
  // Fully compressed (Sparse(Sparse)) symmetric input.
  Workload W = makeWorkload("ssymv", 31, 2);
  TensorFormat Dcsc;
  Dcsc.Levels = {LevelKind::Sparse, LevelKind::Sparse};
  Tensor A = Tensor::fromCoo(W.Inputs.at("A").toCoo(), Dcsc);
  W.Inputs.erase("A");
  W.Inputs.emplace("A", std::move(A));
  W.E.declare("A", Dcsc);
  W.E.setSymmetry("A", Partition::full(2));
  CompileResult R = compileEinsum(W.E);
  Tensor Ref = oracle(W);
  EXPECT_LT(Tensor::maxAbsDiff(runKernel(R.Optimized, W), Ref), tolFor(W));
}

TEST(Formats, SsymvOverBandedInput) {
  // Structured (banded) symmetric input through the same pipeline.
  Rng R(33);
  Workload W;
  W.E = makeSsymv();
  TensorFormat Banded;
  Banded.Levels = {LevelKind::Dense, LevelKind::Banded};
  W.E.declare("A", Banded);
  W.E.setSymmetry("A", Partition::full(2));
  W.Inputs.emplace("A", generateBandedSymmetric(60, 3, R, Banded));
  W.Inputs.emplace("x", generateDenseVector(60, R));
  W.OutDims = {60};
  CompileResult C = compileEinsum(W.E);
  Tensor Ref = oracle(W);
  EXPECT_LT(Tensor::maxAbsDiff(runKernel(C.Optimized, W), Ref), tolFor(W));
}

TEST(Formats, SsymvOverRleInput) {
  // Run-length encoded symmetric input (paper: RLE-structured tensors).
  Rng R(34);
  Workload W;
  W.E = makeSsymv();
  TensorFormat Rle;
  Rle.Levels = {LevelKind::Dense, LevelKind::RunLength};
  W.E.declare("A", Rle);
  W.E.setSymmetry("A", Partition::full(2));
  W.Inputs.emplace("A", generateBandedSymmetric(40, 2, R, Rle));
  W.Inputs.emplace("x", generateDenseVector(40, R));
  W.OutDims = {40};
  CompileResult C = compileEinsum(W.E);
  Tensor Ref = oracle(W);
  EXPECT_LT(Tensor::maxAbsDiff(runKernel(C.Optimized, W), Ref), tolFor(W));
}

TEST(Formats, PartialSymmetry4dTensor) {
  // A 4-d tensor with {{0,1},{2,3}} symmetry: two independent chains.
  Rng R(35);
  Einsum E = parseEinsum("p4", "C[i,k] += A[i,j,k,l] * x[j] * z[l]");
  E.LoopOrder = {"l", "k", "j", "i"};
  E.declare("A", TensorFormat::csf(4));
  E.setSymmetry("A", Partition::parse(4, "{0,1}{2,3}"));
  // Build a partially symmetric tensor: symmetrize over both pairs.
  const int64_t N = 7;
  Coo C({N, N, N, N});
  for (int K = 0; K < 120; ++K) {
    int64_t I = R.nextIndex(N), J = R.nextIndex(N), K2 = R.nextIndex(N),
            L = R.nextIndex(N);
    if (I > J)
      std::swap(I, J);
    if (K2 > L)
      std::swap(K2, L);
    double V = R.nextDouble();
    C.add({I, J, K2, L}, V);
    if (I != J)
      C.add({J, I, K2, L}, V);
    if (K2 != L)
      C.add({I, J, L, K2}, V);
    if (I != J && K2 != L)
      C.add({J, I, L, K2}, V);
  }
  Workload W;
  W.E = E;
  W.Inputs.emplace("A", Tensor::fromCoo(std::move(C),
                                        TensorFormat::csf(4), 0.0,
                                        OpKind::Max));
  W.Inputs.emplace("x", generateDenseVector(N, R));
  W.Inputs.emplace("z", generateDenseVector(N, R));
  W.OutDims = {N, N};
  CompileResult Res = compileEinsum(W.E);
  // Two chains discovered.
  EXPECT_EQ(Res.Analysis.Chains.size(), 2u);
  Tensor Ref = oracle(W);
  Tensor Naive = runKernel(Res.Naive, W);
  Tensor Opt = runKernel(Res.Optimized, W);
  EXPECT_LT(Tensor::maxAbsDiff(Naive, Ref), tolFor(W));
  EXPECT_LT(Tensor::maxAbsDiff(Opt, Ref), tolFor(W));
}

TEST(Formats, InvisibleContractionSymmetryEndToEnd) {
  // B[i] += A[i,j] * A[i,k] with asymmetric A: the j,k invariance chain
  // halves the work and stays correct.
  Rng R(36);
  Einsum E = parseEinsum("rowsq", "B[i] += A[i,j] * A[i,k]");
  E.LoopOrder = {"k", "j", "i"};
  E.declare("A", TensorFormat::csf(2));
  Workload W;
  W.E = E;
  W.Inputs.emplace("A", generateSparseMatrix(30, 30, 150, R,
                                             TensorFormat::csf(2)));
  W.OutDims = {30};
  CompileResult Res = compileEinsum(W.E);
  Tensor Ref = oracle(W);
  EXPECT_LT(Tensor::maxAbsDiff(runKernel(Res.Optimized, W), Ref),
            tolFor(W));
  EXPECT_LT(Tensor::maxAbsDiff(runKernel(Res.Naive, W), Ref), tolFor(W));
}

TEST(Formats, EpilogueSeparateFromBody) {
  // runBody leaves the non-canonical triangle untouched; runEpilogue
  // completes it (the paper times them separately).
  Workload W = makeWorkload("ssyrk", 37, 2);
  CompileResult R = compileEinsum(W.E);
  Tensor Out = Tensor::dense(W.OutDims, 0.0);
  Executor E(R.Optimized);
  for (auto &[Name, T] : W.Inputs)
    E.bind(Name, &T);
  E.bind("C", &Out);
  E.prepare();
  E.runBody();
  // Lower triangle still zero somewhere nonzero in the reference.
  Tensor Ref = oracle(W);
  bool LowerIncomplete = false;
  for (int64_t I = 0; I < Out.dim(0) && !LowerIncomplete; ++I)
    for (int64_t J = 0; J < I && !LowerIncomplete; ++J)
      if (Ref.at({I, J}) != 0.0 && Out.at({I, J}) == 0.0)
        LowerIncomplete = true;
  EXPECT_TRUE(LowerIncomplete);
  E.runEpilogue();
  EXPECT_LT(Tensor::maxAbsDiff(Out, Ref), tolFor(W));
}
