//===- tests/FaultInjection.h - Tensor corruption harness -----*- C++ -*-===//
///
/// \file
/// Structured corruption of otherwise-valid tensors, for the
/// fault-injection tests (tests/fault_test.cpp): each Fault is one
/// class of level-array damage a buggy producer or bit flip could
/// introduce, applied in place through Tensor::mutableLevel. The
/// contract under test is that Tensor::validate(Deep) rejects every
/// corrupted tensor with ErrCode::InvalidTensor — and therefore that an
/// Executor with ValidateInputs=Deep refuses to run over it — without
/// aborting, crashing, or tripping a sanitizer. See docs/ROBUSTNESS.md
/// for the corpus format.
///
//===----------------------------------------------------------------------===//

#ifndef SYSTEC_TESTS_FAULTINJECTION_H
#define SYSTEC_TESTS_FAULTINJECTION_H

#include "tensor/Tensor.h"

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace systec {
namespace fault {

enum class Fault {
  PtrNonMonotone,  ///< interior Ptr above its successor (Sparse/RunLength)
  PtrOutOfRange,   ///< Ptr endpoint past the Crd/RunEnd array
  CrdUnsorted,     ///< two coordinates of one fiber swapped
  CrdOutOfRange,   ///< a coordinate set to the level extent
  ValsTruncated,   ///< value array one element short
  BandInverted,    ///< a Banded interval with Lo > Hi
  BandOffsetSkew,  ///< interior Off no longer matching the band widths
  RunEndShort,     ///< last run end pulled below the extent (coverage gap)
  RunEndUnsorted,  ///< two run ends of one fiber swapped
  NaNPoison,       ///< a NaN planted in the value array
};

inline const char *faultName(Fault F) {
  switch (F) {
  case Fault::PtrNonMonotone:
    return "ptr-non-monotone";
  case Fault::PtrOutOfRange:
    return "ptr-out-of-range";
  case Fault::CrdUnsorted:
    return "crd-unsorted";
  case Fault::CrdOutOfRange:
    return "crd-out-of-range";
  case Fault::ValsTruncated:
    return "vals-truncated";
  case Fault::BandInverted:
    return "band-inverted";
  case Fault::BandOffsetSkew:
    return "band-offset-skew";
  case Fault::RunEndShort:
    return "runend-short";
  case Fault::RunEndUnsorted:
    return "runend-unsorted";
  case Fault::NaNPoison:
    return "nan-poison";
  }
  return "unknown";
}

inline const std::vector<Fault> &allFaults() {
  static const std::vector<Fault> All = {
      Fault::PtrNonMonotone, Fault::PtrOutOfRange,  Fault::CrdUnsorted,
      Fault::CrdOutOfRange,  Fault::ValsTruncated,  Fault::BandInverted,
      Fault::BandOffsetSkew, Fault::RunEndShort,    Fault::RunEndUnsorted,
      Fault::NaNPoison,
  };
  return All;
}

/// Applies \p F to \p T in place. Returns a description of the exact
/// corruption for SCOPED_TRACE, or nullopt when the tensor offers no
/// site for this fault class (e.g. BandInverted on a CSR matrix) — the
/// caller skips those combinations and counts coverage separately.
inline std::optional<std::string> injectFault(Tensor &T, Fault F) {
  const unsigned N = T.order();
  auto LevelTag = [](unsigned L) { return "level " + std::to_string(L); };
  switch (F) {
  case Fault::PtrNonMonotone:
    for (unsigned L = 0; L < N; ++L) {
      Level &Lev = T.mutableLevel(L);
      if ((Lev.Kind == LevelKind::Sparse ||
           Lev.Kind == LevelKind::RunLength) &&
          Lev.Ptr.size() >= 3) {
        const size_t P = Lev.Ptr.size() / 2; // interior: 1..size-2
        Lev.Ptr[P] = Lev.Ptr[P + 1] + 1;
        return LevelTag(L) + " Ptr[" + std::to_string(P) +
               "] raised above its successor";
      }
    }
    return std::nullopt;
  case Fault::PtrOutOfRange:
    for (unsigned L = 0; L < N; ++L) {
      Level &Lev = T.mutableLevel(L);
      if ((Lev.Kind == LevelKind::Sparse ||
           Lev.Kind == LevelKind::RunLength) &&
          !Lev.Ptr.empty()) {
        Lev.Ptr.back() += 1;
        return LevelTag(L) + " Ptr endpoint pushed past the child array";
      }
    }
    return std::nullopt;
  case Fault::CrdUnsorted:
    for (unsigned L = 0; L < N; ++L) {
      Level &Lev = T.mutableLevel(L);
      if (Lev.Kind != LevelKind::Sparse)
        continue;
      for (size_t P = 0; P + 1 < Lev.Ptr.size(); ++P)
        if (Lev.Ptr[P + 1] - Lev.Ptr[P] >= 2) {
          std::swap(Lev.Crd[Lev.Ptr[P]], Lev.Crd[Lev.Ptr[P] + 1]);
          return LevelTag(L) + " coordinates of fiber " + std::to_string(P) +
                 " swapped";
        }
    }
    return std::nullopt;
  case Fault::CrdOutOfRange:
    for (unsigned L = 0; L < N; ++L) {
      Level &Lev = T.mutableLevel(L);
      if (Lev.Kind == LevelKind::Sparse && !Lev.Crd.empty()) {
        Lev.Crd.back() = Lev.Dim; // one past the valid range
        return LevelTag(L) + " last coordinate set to the extent " +
               std::to_string(Lev.Dim);
      }
    }
    return std::nullopt;
  case Fault::ValsTruncated:
    if (T.vals().empty())
      return std::nullopt;
    T.vals().pop_back();
    return "value array truncated by one element";
  case Fault::BandInverted:
    for (unsigned L = 0; L < N; ++L) {
      Level &Lev = T.mutableLevel(L);
      if (Lev.Kind != LevelKind::Banded)
        continue;
      for (size_t P = 0; P < Lev.Lo.size(); ++P)
        if (Lev.Hi[P] > Lev.Lo[P]) {
          std::swap(Lev.Lo[P], Lev.Hi[P]);
          return LevelTag(L) + " interval at position " + std::to_string(P) +
                 " inverted";
        }
    }
    return std::nullopt;
  case Fault::BandOffsetSkew:
    for (unsigned L = 0; L < N; ++L) {
      Level &Lev = T.mutableLevel(L);
      if (Lev.Kind == LevelKind::Banded && Lev.Off.size() >= 3) {
        const size_t P = Lev.Off.size() / 2; // interior: back() untouched
        Lev.Off[P] += 1;
        return LevelTag(L) + " Off[" + std::to_string(P) +
               "] skewed off the band widths";
      }
    }
    return std::nullopt;
  case Fault::RunEndShort:
    for (unsigned L = 0; L < N; ++L) {
      Level &Lev = T.mutableLevel(L);
      if (Lev.Kind == LevelKind::RunLength && !Lev.RunEnd.empty() &&
          Lev.Dim > 0) {
        Lev.RunEnd.back() -= 1; // last fiber no longer tiles [0, Dim)
        return LevelTag(L) + " last run end pulled below the extent";
      }
    }
    return std::nullopt;
  case Fault::RunEndUnsorted:
    for (unsigned L = 0; L < N; ++L) {
      Level &Lev = T.mutableLevel(L);
      if (Lev.Kind != LevelKind::RunLength)
        continue;
      for (size_t P = 0; P + 1 < Lev.Ptr.size(); ++P)
        if (Lev.Ptr[P + 1] - Lev.Ptr[P] >= 2) {
          std::swap(Lev.RunEnd[Lev.Ptr[P]], Lev.RunEnd[Lev.Ptr[P] + 1]);
          return LevelTag(L) + " run ends of fiber " + std::to_string(P) +
                 " swapped";
        }
    }
    return std::nullopt;
  case Fault::NaNPoison:
    if (T.vals().empty())
      return std::nullopt;
    T.vals()[T.vals().size() / 2] =
        std::numeric_limits<double>::quiet_NaN();
    return "NaN planted mid value array";
  }
  return std::nullopt;
}

} // namespace fault
} // namespace systec

#endif // SYSTEC_TESTS_FAULTINJECTION_H
