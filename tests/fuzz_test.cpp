//===- tests/fuzz_test.cpp ------------------------------------*- C++ -*-===//
///
/// Randomized compiler fuzzing: generate random einsums over random
/// symmetric sparse inputs, compile through the full pipeline, and
/// check the naive and optimized kernels against the brute-force
/// oracle. This explores index/symmetry/loop-order combinations far
/// beyond the paper's named kernels (including non-concordant accesses
/// that exercise the locate fallback).
///
/// The differential-testing matrix (DifferentialMatrix below) draws
/// level formats (Dense/Sparse/RunLength/Banded) per mode and semirings
/// (arithmetic, min-plus, max-times, boolean) per kernel — including
/// occasional non-annihilating fills, which the algebraic walker
/// analysis must veto rather than mis-skip — and asserts bit-identical
/// values and equal execution counters across {interpreter,
/// micro-kernels} x {Threads 1, 4} against the dense oracle. Tensor
/// values are small integers so every reduction is exact and bitwise
/// reproducible across task decompositions.
///
/// Reproducing a failure: every case is a pure function of its seed
/// (the GTest parameter printed in the test name, e.g.
/// Seeds/EinsumFuzz.CompiledKernelsMatchOracle/42). Run
/// `fuzz_test --gtest_filter='*42'` and the SCOPED_TRACE lines print
/// the einsum, formats, semiring, and loop order of that case.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Oracle.h"
#include "runtime/Executor.h"
#include "support/Counters.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/StringUtils.h"

using namespace systec;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// The semiring axis of the differential matrix.
enum class Semiring { Arith, MinPlus, MaxTimes, Boolean };

struct SemiringSpec {
  Semiring S;
  const char *Name;
  OpKind Reduce;
  const char *ReduceTok;
  const char *CombineTok; ///< infix, or null for call syntax
  const char *CombineCall;
  double Fill;      ///< annihilating fill for the sparse operands
  double WeirdFill; ///< non-annihilating fill (walker must be vetoed)
};

const SemiringSpec &semiring(Semiring S) {
  static const SemiringSpec Specs[] = {
      {Semiring::Arith, "arith", OpKind::Add, "+= ", "*", nullptr, 0.0, 1.0},
      {Semiring::MinPlus, "minplus", OpKind::Min, "min= ", "+", nullptr,
       Inf, 0.0},
      {Semiring::MaxTimes, "maxtimes", OpKind::Max, "max= ", "*", nullptr,
       0.0, 2.0},
      {Semiring::Boolean, "boolean", OpKind::Max, "max= ", nullptr, "min",
       0.0, 1.0},
  };
  return Specs[static_cast<int>(S)];
}

/// A random per-mode format: any level kind, RunLength bottom-only.
TensorFormat randomFormat(unsigned Order, Rng &R) {
  TensorFormat F;
  F.Levels.resize(Order);
  for (unsigned L = 0; L < Order; ++L) {
    const bool Bottom = (L + 1 == Order);
    switch (R.nextIndex(Bottom ? 4 : 3)) {
    case 0:
      F.Levels[L] = LevelKind::Dense;
      break;
    case 1:
      F.Levels[L] = LevelKind::Sparse;
      break;
    case 2:
      F.Levels[L] = LevelKind::Banded;
      break;
    default:
      F.Levels[L] = LevelKind::RunLength;
      break;
    }
  }
  return F;
}

/// Quantizes stored values to small integers (exact under any
/// reduction order). Entries equal to the fill stay put: RunLength fill
/// runs and Banded in-band holes store the fill explicitly, and scaling
/// them would diverge from the implicit out-of-band fill (breaking both
/// symmetry and fill semantics). Boolean kernels get 0/1 data.
void quantize(Tensor &T, bool Boolean) {
  const double Fill = T.fill();
  for (double &V : T.vals()) {
    if (std::isinf(V) || V == Fill)
      continue;
    V = Boolean ? (V < 0.5 ? 0.0 : 1.0) : std::floor(V * 8);
  }
}

Tensor randomSparseVector(int64_t Dim, Rng &R, const TensorFormat &F,
                          double Fill) {
  Coo C({Dim});
  for (int64_t K = 0; K < Dim; ++K)
    if (R.nextBool(0.5))
      C.add({K}, R.nextDouble());
  return Tensor::fromCoo(std::move(C), F, Fill);
}

struct FuzzCase {
  Einsum E;
  SemiringSpec Spec{Semiring::Arith, "", OpKind::Add, "", "", nullptr,
                    0.0, 0.0};
  bool WeirdFill = false;
  std::map<std::string, Tensor> Inputs;
  std::vector<int64_t> OutDims;
  double OutInit = 0.0;
};

/// Builds a random einsum: a symmetric tensor A combined with a second
/// operand B (dense or sparse, any format), random output indices,
/// random loop order, random semiring.
FuzzCase makeCase(uint64_t Seed) {
  Rng R(Seed);
  const int64_t Dim = 5 + R.nextIndex(3);
  const std::vector<std::string> Pool{"a", "b", "c", "d"};

  FuzzCase F;
  F.Spec = semiring(static_cast<Semiring>(R.nextIndex(4)));
  // Occasionally use a fill that does NOT annihilate the body: the
  // walker algebra must fall back to full iteration (via the locator)
  // and still match the dense oracle exactly.
  F.WeirdFill = R.nextBool(0.15);
  const double FillA = F.WeirdFill ? F.Spec.WeirdFill : F.Spec.Fill;
  const bool SparseB = R.nextBool(0.35);
  const unsigned OrderA = 2 + static_cast<unsigned>(R.nextIndex(2));

  // A's indices: distinct names from the pool.
  std::vector<std::string> Names = Pool;
  std::shuffle(Names.begin(), Names.end(), R.engine());
  std::vector<std::string> AIdx(Names.begin(), Names.begin() + OrderA);

  // One operand over 1-2 indices overlapping A or fresh.
  unsigned OrderB = 1 + static_cast<unsigned>(R.nextIndex(2));
  std::vector<std::string> BIdx;
  for (unsigned M = 0; M < OrderB; ++M)
    BIdx.push_back(Pool[R.nextIndex(Pool.size())]);
  std::set<std::string> BSet(BIdx.begin(), BIdx.end());
  BIdx.assign(BSet.begin(), BSet.end()); // distinct modes

  // Output: random subset of the used indices (possibly scalar).
  std::vector<std::string> Used = AIdx;
  for (const std::string &I : BIdx)
    if (std::find(Used.begin(), Used.end(), I) == Used.end())
      Used.push_back(I);
  std::vector<std::string> OutIdx;
  for (const std::string &I : Used)
    if (R.nextBool(0.4))
      OutIdx.push_back(I);

  auto Access = [](const std::string &T,
                   const std::vector<std::string> &Idx) {
    std::string Out = T + "[";
    for (size_t I = 0; I < Idx.size(); ++I)
      Out += (I ? "," : "") + Idx[I];
    return Out + "]";
  };
  std::ostringstream Text;
  Text << "O[";
  for (size_t I = 0; I < OutIdx.size(); ++I)
    Text << (I ? "," : "") << OutIdx[I];
  Text << "] " << F.Spec.ReduceTok;
  if (F.Spec.CombineTok) {
    Text << Access("A", AIdx) << " " << F.Spec.CombineTok << " "
         << Access("B", BIdx);
  } else {
    Text << F.Spec.CombineCall << "(" << Access("A", AIdx) << ", "
         << Access("B", BIdx) << ")";
  }

  F.E = parseEinsum("fuzz" + std::to_string(Seed), Text.str());
  // Random loop order over every index.
  std::vector<std::string> Loops = F.E.allIndices();
  std::shuffle(Loops.begin(), Loops.end(), R.engine());
  F.E.LoopOrder = Loops;

  const unsigned NB = static_cast<unsigned>(BIdx.size());
  const TensorFormat FmtA = randomFormat(OrderA, R);
  const TensorFormat FmtB =
      SparseB ? randomFormat(NB, R) : TensorFormat::dense(NB);
  const double FillB = FmtB.isAllDense() ? 0.0 : FillA;
  F.E.declare("A", FmtA, FillA);
  F.E.setSymmetry("A", Partition::full(OrderA));
  F.E.declare("B", FmtB, FillB);

  const bool Boolean = F.Spec.S == Semiring::Boolean;
  Tensor A = generateSymmetricTensor(OrderA, Dim, 3 * Dim, R, FmtA, FillA);
  quantize(A, Boolean);
  F.Inputs.emplace("A", std::move(A));
  Tensor B;
  if (!FmtB.isAllDense()) {
    B = NB >= 2 ? generateSymmetricTensor(NB, Dim, 2 * Dim, R, FmtB, FillB)
                : randomSparseVector(Dim, R, FmtB, FillB);
  } else {
    std::vector<int64_t> BDims(NB, Dim); // NB >= 1 by construction
    B = Tensor::dense(BDims);
    for (double &V : B.vals())
      V = R.nextDouble();
  }
  quantize(B, Boolean);
  F.Inputs.emplace("B", std::move(B));

  F.OutDims.assign(std::max<size_t>(OutIdx.size(), 1), Dim);
  if (OutIdx.empty())
    F.OutDims = {1};
  F.OutInit = opInfo(F.Spec.Reduce).Identity;
  return F;
}

std::string caseTrace(const FuzzCase &F) {
  return F.E.str() + "  loops: " + joinAny(F.E.LoopOrder, ",") +
         "  semiring: " + F.Spec.Name +
         "  A: " + F.E.decl("A").Format.str() +
         "  B: " + F.E.decl("B").Format.str() +
         (F.WeirdFill ? "  (non-annihilating fill)" : "");
}

Tensor run(const Kernel &K, FuzzCase &F,
           const ExecOptions &O = ExecOptions()) {
  Tensor Out = Tensor::dense(F.OutDims, 0.0);
  Out.setAllValues(F.OutInit);
  Executor E(K, O);
  for (auto &[Name, T] : F.Inputs)
    E.bind(Name, &T);
  E.bind("O", &Out);
  E.prepare();
  E.run();
  return Out;
}

/// Seed-derived parallel execution options: random thread count,
/// schedule policy, and micro-kernel toggle (the parallel-runtime and
/// specialization-layer fuzz pass).
ExecOptions parallelOptions(uint64_t Seed) {
  Rng R(Seed ^ 0x9E3779B97F4A7C15ull);
  ExecOptions O;
  const unsigned Threads[] = {2, 3, 4, 8};
  O.Threads = Threads[R.nextIndex(4)];
  const SchedulePolicy Policies[] = {
      SchedulePolicy::Auto, SchedulePolicy::Static, SchedulePolicy::Dynamic,
      SchedulePolicy::TriangleBalanced};
  O.Schedule = Policies[R.nextIndex(4)];
  if (R.nextBool(0.25))
    O.PrivatizationBudget = 64; // exercise the inner-loop fallback
  O.EnableMicroKernels = R.nextBool(0.5);
  return O;
}

/// Runs \p K with counters on and snapshots them.
Tensor runCounted(const Kernel &K, FuzzCase &F, const ExecOptions &O,
                  CounterSnapshot &Snap) {
  counters().reset();
  setCountersEnabled(true);
  Tensor Out = run(K, F, O);
  Snap = counters().snapshot();
  return Out;
}

} // namespace

class EinsumFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EinsumFuzz, CompiledKernelsMatchOracle) {
  FuzzCase F = makeCase(GetParam());
  SCOPED_TRACE(caseTrace(F));
  CompileResult R = compileEinsum(F.E);
  std::map<std::string, const Tensor *> In;
  for (auto &[Name, T] : F.Inputs)
    In[Name] = &T;
  Tensor Ref = oracleEval(F.E, In);
  Tensor Naive = run(R.Naive, F);
  Tensor Opt = run(R.Optimized, F);
  EXPECT_LT(Tensor::maxAbsDiff(Naive, Ref), 1e-8) << "naive";
  EXPECT_LT(Tensor::maxAbsDiff(Opt, Ref), 1e-8) << "optimized";
  // Parallel runtime fuzz: a random thread count and schedule must
  // reproduce the oracle too.
  ExecOptions Par = parallelOptions(GetParam());
  SCOPED_TRACE(std::string("threads ") + std::to_string(Par.Threads) +
               " schedule " + schedulePolicyName(Par.Schedule) +
               (Par.EnableMicroKernels ? " fused" : " interp"));
  Tensor NaivePar = run(R.Naive, F, Par);
  Tensor OptPar = run(R.Optimized, F, Par);
  EXPECT_LT(Tensor::maxAbsDiff(NaivePar, Ref), 1e-8) << "naive-parallel";
  EXPECT_LT(Tensor::maxAbsDiff(OptPar, Ref), 1e-8) << "optimized-parallel";
}

TEST_P(EinsumFuzz, MicroKernelsBitIdenticalToInterpreter) {
  // The specialization-layer oracle: with micro-kernels on vs. off, the
  // same plan must produce bit-identical outputs and exactly equal
  // execution counters on both compiled kernels.
  FuzzCase F = makeCase(GetParam());
  SCOPED_TRACE(caseTrace(F));
  CompileResult R = compileEinsum(F.E);
  ExecOptions Interp, Fused;
  Interp.EnableMicroKernels = false;
  Fused.EnableMicroKernels = true;
  for (const Kernel *K : {&R.Naive, &R.Optimized}) {
    SCOPED_TRACE(K == &R.Naive ? "naive" : "optimized");
    CounterSnapshot SI, SF;
    Tensor OutI = runCounted(*K, F, Interp, SI);
    Tensor OutF = runCounted(*K, F, Fused, SF);
    ASSERT_EQ(OutI.vals().size(), OutF.vals().size());
    for (size_t I = 0; I < OutI.vals().size(); ++I)
      EXPECT_EQ(OutI.vals()[I], OutF.vals()[I]) << "element " << I;
    EXPECT_EQ(SI.SparseReads, SF.SparseReads);
    EXPECT_EQ(SI.Reductions, SF.Reductions);
    EXPECT_EQ(SI.ScalarOps, SF.ScalarOps);
    EXPECT_EQ(SI.OutputWrites, SF.OutputWrites);
  }
}

TEST_P(EinsumFuzz, DifferentialMatrix) {
  // The semiring x format matrix: {interpreter, micro-kernels} x
  // {Threads 1, 4} must agree bit for bit with each other and exactly
  // with the dense oracle (integer data makes every reduction exact,
  // so results are decomposition-independent), and the four runtime
  // counters must be identical in every cell.
  FuzzCase F = makeCase(GetParam());
  SCOPED_TRACE(caseTrace(F));
  CompileResult R = compileEinsum(F.E);
  std::map<std::string, const Tensor *> In;
  for (auto &[Name, T] : F.Inputs)
    In[Name] = &T;
  Tensor Ref = oracleEval(F.E, In);
  for (const Kernel *K : {&R.Naive, &R.Optimized}) {
    SCOPED_TRACE(K == &R.Naive ? "naive" : "optimized");
    struct Cell {
      const char *Name;
      bool Fused;
      unsigned Threads;
    };
    const Cell Cells[] = {{"interp-1", false, 1},
                          {"fused-1", true, 1},
                          {"interp-4", false, 4},
                          {"fused-4", true, 4}};
    Tensor First;
    CounterSnapshot FirstSnap;
    for (const Cell &C : Cells) {
      SCOPED_TRACE(C.Name);
      ExecOptions O;
      O.EnableMicroKernels = C.Fused;
      O.Threads = C.Threads;
      CounterSnapshot Snap;
      Tensor Out = runCounted(*K, F, O, Snap);
      // Exact agreement with the dense oracle on every element.
      ASSERT_EQ(Out.vals().size(), Ref.vals().size());
      for (size_t I = 0; I < Out.vals().size(); ++I)
        EXPECT_EQ(Out.vals()[I], Ref.vals()[I]) << "element " << I;
      if (&C == &Cells[0]) {
        First = std::move(Out);
        FirstSnap = Snap;
        continue;
      }
      for (size_t I = 0; I < Out.vals().size(); ++I)
        EXPECT_EQ(Out.vals()[I], First.vals()[I]) << "element " << I;
      EXPECT_EQ(Snap.SparseReads, FirstSnap.SparseReads);
      EXPECT_EQ(Snap.Reductions, FirstSnap.Reductions);
      EXPECT_EQ(Snap.ScalarOps, FirstSnap.ScalarOps);
      EXPECT_EQ(Snap.OutputWrites, FirstSnap.OutputWrites);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EinsumFuzz,
                         ::testing::Range<uint64_t>(1, 151));
