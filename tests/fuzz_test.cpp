//===- tests/fuzz_test.cpp ------------------------------------*- C++ -*-===//
///
/// Randomized compiler fuzzing: generate random einsums over random
/// symmetric sparse inputs and dense operands, compile through the full
/// pipeline, and check the naive and optimized kernels against the
/// brute-force oracle. This explores index/symmetry/loop-order
/// combinations far beyond the paper's named kernels (including
/// non-concordant accesses that exercise the locate fallback).
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Oracle.h"
#include "runtime/Executor.h"
#include "support/Counters.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "support/StringUtils.h"

using namespace systec;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

struct FuzzCase {
  Einsum E;
  std::map<std::string, Tensor> Inputs;
  std::vector<int64_t> OutDims;
  double OutInit = 0.0;
};

/// Builds a random einsum: a symmetric sparse tensor A times/plus one
/// or two dense operands, random output indices, random loop order.
FuzzCase makeCase(uint64_t Seed) {
  Rng R(Seed);
  const int64_t Dim = 5 + R.nextIndex(3);
  const std::vector<std::string> Pool{"a", "b", "c", "d"};

  FuzzCase F;
  const bool MinPlus = R.nextBool(0.25);
  // Occasionally make B sparse too, so loops intersecting two sparse
  // operands (the micro-kernel two-finger merge and the interpreter's
  // locate fallback) get fuzzed. Only sound under (+,*): a sparse B
  // needs fill = 0 to annihilate missing coordinates.
  const bool SparseB = !MinPlus && R.nextBool(0.3);
  const unsigned OrderA = 2 + static_cast<unsigned>(R.nextIndex(2));

  // A's indices: distinct names from the pool.
  std::vector<std::string> Names = Pool;
  std::shuffle(Names.begin(), Names.end(), R.engine());
  std::vector<std::string> AIdx(Names.begin(), Names.begin() + OrderA);

  // One dense operand over 1-2 indices overlapping A or fresh.
  unsigned OrderB = 1 + static_cast<unsigned>(R.nextIndex(2));
  std::vector<std::string> BIdx;
  for (unsigned M = 0; M < OrderB; ++M)
    BIdx.push_back(Pool[R.nextIndex(Pool.size())]);
  std::set<std::string> BSet(BIdx.begin(), BIdx.end());
  BIdx.assign(BSet.begin(), BSet.end()); // distinct modes

  // Output: random subset of the used indices (possibly scalar).
  std::vector<std::string> Used = AIdx;
  for (const std::string &I : BIdx)
    if (std::find(Used.begin(), Used.end(), I) == Used.end())
      Used.push_back(I);
  std::vector<std::string> OutIdx;
  for (const std::string &I : Used)
    if (R.nextBool(0.4))
      OutIdx.push_back(I);

  std::ostringstream Text;
  Text << "O[";
  for (size_t I = 0; I < OutIdx.size(); ++I)
    Text << (I ? "," : "") << OutIdx[I];
  Text << "] " << (MinPlus ? "min= " : "+= ") << "A[";
  for (size_t I = 0; I < AIdx.size(); ++I)
    Text << (I ? "," : "") << AIdx[I];
  Text << "] " << (MinPlus ? "+" : "*") << " B[";
  for (size_t I = 0; I < BIdx.size(); ++I)
    Text << (I ? "," : "") << BIdx[I];
  Text << "]";

  F.E = parseEinsum("fuzz" + std::to_string(Seed), Text.str());
  // Random loop order over every index.
  std::vector<std::string> Loops = F.E.allIndices();
  std::shuffle(Loops.begin(), Loops.end(), R.engine());
  F.E.LoopOrder = Loops;

  const double Fill = MinPlus ? Inf : 0.0;
  const unsigned NB = static_cast<unsigned>(BIdx.size());
  // The symmetric generator needs at least two modes; order-1 B stays
  // dense.
  const bool UseSparseB = SparseB && NB >= 2;
  F.E.declare("A", TensorFormat::csf(OrderA), Fill);
  F.E.setSymmetry("A", Partition::full(OrderA));
  F.E.declare("B", UseSparseB ? TensorFormat::csf(NB)
                              : TensorFormat::dense(NB));

  F.Inputs.emplace("A", generateSymmetricTensor(OrderA, Dim, 3 * Dim, R,
                                                TensorFormat::csf(OrderA),
                                                Fill));
  if (UseSparseB) {
    F.Inputs.emplace("B",
                     generateSymmetricTensor(NB, Dim, 2 * Dim, R,
                                             TensorFormat::csf(NB)));
  } else {
    std::vector<int64_t> BDims(BIdx.size(), Dim);
    Tensor B = Tensor::dense(BDims);
    for (double &V : B.vals())
      V = R.nextDouble();
    F.Inputs.emplace("B", std::move(B));
  }

  F.OutDims.assign(std::max<size_t>(OutIdx.size(), 1), Dim);
  if (OutIdx.empty())
    F.OutDims = {1};
  F.OutInit = MinPlus ? Inf : 0.0;
  return F;
}

Tensor run(const Kernel &K, FuzzCase &F,
           const ExecOptions &O = ExecOptions()) {
  Tensor Out = Tensor::dense(F.OutDims, 0.0);
  Out.setAllValues(F.OutInit);
  Executor E(K, O);
  for (auto &[Name, T] : F.Inputs)
    E.bind(Name, &T);
  E.bind("O", &Out);
  E.prepare();
  E.run();
  return Out;
}

/// Seed-derived parallel execution options: random thread count,
/// schedule policy, and micro-kernel toggle (the parallel-runtime and
/// specialization-layer fuzz pass).
ExecOptions parallelOptions(uint64_t Seed) {
  Rng R(Seed ^ 0x9E3779B97F4A7C15ull);
  ExecOptions O;
  const unsigned Threads[] = {2, 3, 4, 8};
  O.Threads = Threads[R.nextIndex(4)];
  const SchedulePolicy Policies[] = {
      SchedulePolicy::Auto, SchedulePolicy::Static, SchedulePolicy::Dynamic,
      SchedulePolicy::TriangleBalanced};
  O.Schedule = Policies[R.nextIndex(4)];
  if (R.nextBool(0.25))
    O.PrivatizationBudget = 64; // exercise the inner-loop fallback
  O.EnableMicroKernels = R.nextBool(0.5);
  return O;
}

/// Runs \p K with counters on and snapshots them.
Tensor runCounted(const Kernel &K, FuzzCase &F, const ExecOptions &O,
                  CounterSnapshot &Snap) {
  counters().reset();
  setCountersEnabled(true);
  Tensor Out = run(K, F, O);
  Snap = counters().snapshot();
  return Out;
}

} // namespace

class EinsumFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EinsumFuzz, CompiledKernelsMatchOracle) {
  FuzzCase F = makeCase(GetParam());
  SCOPED_TRACE(F.E.str() + "  loops: " +
               joinAny(F.E.LoopOrder, ","));
  CompileResult R = compileEinsum(F.E);
  std::map<std::string, const Tensor *> In;
  for (auto &[Name, T] : F.Inputs)
    In[Name] = &T;
  Tensor Ref = oracleEval(F.E, In);
  Tensor Naive = run(R.Naive, F);
  Tensor Opt = run(R.Optimized, F);
  EXPECT_LT(Tensor::maxAbsDiff(Naive, Ref), 1e-8) << "naive";
  EXPECT_LT(Tensor::maxAbsDiff(Opt, Ref), 1e-8) << "optimized";
  // Parallel runtime fuzz: a random thread count and schedule must
  // reproduce the oracle too (merge order may differ from sequential
  // by rounding only).
  ExecOptions Par = parallelOptions(GetParam());
  SCOPED_TRACE(std::string("threads ") + std::to_string(Par.Threads) +
               " schedule " + schedulePolicyName(Par.Schedule) +
               (Par.EnableMicroKernels ? " fused" : " interp"));
  Tensor NaivePar = run(R.Naive, F, Par);
  Tensor OptPar = run(R.Optimized, F, Par);
  EXPECT_LT(Tensor::maxAbsDiff(NaivePar, Ref), 1e-8) << "naive-parallel";
  EXPECT_LT(Tensor::maxAbsDiff(OptPar, Ref), 1e-8) << "optimized-parallel";
}

TEST_P(EinsumFuzz, MicroKernelsBitIdenticalToInterpreter) {
  // The specialization-layer oracle: with micro-kernels on vs. off, the
  // same plan must produce bit-identical outputs and exactly equal
  // execution counters on both compiled kernels.
  FuzzCase F = makeCase(GetParam());
  SCOPED_TRACE(F.E.str() + "  loops: " + joinAny(F.E.LoopOrder, ","));
  CompileResult R = compileEinsum(F.E);
  ExecOptions Interp, Fused;
  Interp.EnableMicroKernels = false;
  Fused.EnableMicroKernels = true;
  for (const Kernel *K : {&R.Naive, &R.Optimized}) {
    SCOPED_TRACE(K == &R.Naive ? "naive" : "optimized");
    CounterSnapshot SI, SF;
    Tensor OutI = runCounted(*K, F, Interp, SI);
    Tensor OutF = runCounted(*K, F, Fused, SF);
    ASSERT_EQ(OutI.vals().size(), OutF.vals().size());
    for (size_t I = 0; I < OutI.vals().size(); ++I)
      EXPECT_EQ(OutI.vals()[I], OutF.vals()[I]) << "element " << I;
    EXPECT_EQ(SI.SparseReads, SF.SparseReads);
    EXPECT_EQ(SI.Reductions, SF.Reductions);
    EXPECT_EQ(SI.ScalarOps, SF.ScalarOps);
    EXPECT_EQ(SI.OutputWrites, SF.OutputWrites);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EinsumFuzz,
                         ::testing::Range<uint64_t>(1, 151));
