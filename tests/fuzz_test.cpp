//===- tests/fuzz_test.cpp ------------------------------------*- C++ -*-===//
///
/// Randomized compiler fuzzing: generate random einsums over random
/// symmetric sparse inputs, compile through the full pipeline, and
/// check the naive and optimized kernels against the brute-force
/// oracle. This explores index/symmetry/loop-order combinations far
/// beyond the paper's named kernels (including non-concordant accesses
/// that exercise the locate fallback).
///
/// The case machinery lives in tests/FuzzHarness.h (shared with the
/// fuzz_replay unit target). The differential matrix draws level
/// formats (Dense/Sparse/RunLength/Banded) per mode, semirings
/// (arithmetic, min-plus, max-times, boolean), two or three operands
/// (three-plus sparse operands exercise the N-way walker
/// intersections, structured second/third operands the
/// RunLength/Banded co-walkers) — including occasional
/// non-annihilating fills, which the algebraic walker analysis must
/// veto rather than mis-skip — and asserts bit-identical values and
/// equal execution counters across {interpreter, micro-kernels} x
/// {Threads 1, 4} against the dense oracle. A separate harness injects
/// Lut factors into the naive kernels. Tensor values are small
/// integers so every reduction is exact and bitwise reproducible
/// across task decompositions.
///
/// Reproducing a failure: every case is a pure function of its seed
/// (the GTest parameter printed in the test name, e.g.
/// Seeds/EinsumFuzz.CompiledKernelsMatchOracle/42). Run
/// `fuzz_test --gtest_filter='*42'` and the SCOPED_TRACE lines print
/// the einsum, formats, semiring, and loop order of that case. Any
/// failing seed is also persisted to tests/seeds/ automatically and
/// replays forever under the fuzz_replay unit target (see
/// tests/README.md).
///
/// The sweep length defaults to 150 seeds and scales with the
/// SYSTEC_FUZZ_ITERS CMake cache variable for extended local/nightly
/// runs without changing the tier-1 wall time.
///
//===----------------------------------------------------------------------===//

#include "FuzzHarness.h"

#include <gtest/gtest.h>

using namespace systec;
using namespace systec::fuzzharness;

#ifndef SYSTEC_FUZZ_ITERS
#define SYSTEC_FUZZ_ITERS 150
#endif

class EinsumFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EinsumFuzz, CompiledKernelsMatchOracle) {
  checkCompiledKernelsMatchOracle(GetParam());
  persistSeedIfFailed("oracle", GetParam());
}

TEST_P(EinsumFuzz, MicroKernelsBitIdenticalToInterpreter) {
  checkMicroKernelsBitIdentical(GetParam());
  persistSeedIfFailed("bitident", GetParam());
}

TEST_P(EinsumFuzz, DifferentialMatrix) {
  checkDifferentialMatrix(GetParam());
  persistSeedIfFailed("matrix", GetParam());
}

TEST_P(EinsumFuzz, LutOperandDifferential) {
  checkLutDifferential(GetParam());
  persistSeedIfFailed("lut", GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EinsumFuzz,
    ::testing::Range<uint64_t>(1, 1 + SYSTEC_FUZZ_ITERS));
