//===- tests/fuzz_replay.cpp ----------------------------------*- C++ -*-===//
///
/// Deterministic replay of every checked-in fuzz seed. Seed files under
/// tests/seeds/ are written by fuzz_test when a randomized case fails
/// (and a few are checked in by hand for historical bugs); each one
/// names a harness and a seed, and this suite — which runs under the
/// fast `unit` ctest label — re-executes exactly that differential
/// check. A seed that once exposed a bug keeps guarding against it on
/// every inner-loop run, independent of the fuzz sweep's range.
///
/// Seed file format (key=value lines, `#` comments ignored):
///
///   harness=matrix        # oracle | bitident | matrix | lut
///   seed=42
///
//===----------------------------------------------------------------------===//

#include "FuzzHarness.h"

#include <gtest/gtest.h>

using namespace systec;
using namespace systec::fuzzharness;

#ifndef SYSTEC_SEED_DIR
#error "fuzz_replay requires SYSTEC_SEED_DIR"
#endif

TEST(FuzzReplay, AllCheckedInSeedsPass) {
  const auto Seeds = loadSeedFiles(SYSTEC_SEED_DIR);
  ASSERT_FALSE(Seeds.empty())
      << "no seed files under " << SYSTEC_SEED_DIR
      << " — the regression corpus should never be empty";
  for (const auto &[File, S] : Seeds) {
    SCOPED_TRACE("seed file: " + File);
    ASSERT_TRUE(S.Valid) << File << " has no parseable seed= line";
    // A seed is only a regression guard while it still generates the
    // case it was checked in for; makeCase's draw order changing would
    // silently retarget the whole corpus, so the recorded trace must
    // keep matching byte for byte.
    if (!S.Trace.empty())
      EXPECT_EQ(S.Trace, caseTrace(makeCase(S.Seed)))
          << File << " no longer generates the case it pinned — "
          << "makeCase's draw order changed; re-select the seed";
    EXPECT_TRUE(runHarness(S.Harness, S.Seed))
        << "unknown harness '" << S.Harness << "' in " << File;
  }
}

TEST(FuzzReplay, RegressionCorpusCoversKnownBugs) {
  // The corpus must keep covering the two historical wrong-results
  // shapes: the PR-2 grouped-two-sparse-operand walker bug (a grouped
  // symmetric kernel whose statements read mismatched accesses of a
  // sparse second operand — intersecting on all of them dropped terms)
  // and the PR-3 fuzz-quantization fix (fill-valued stored entries of
  // RunLength/Banded operands must not be scaled away from the
  // implicit fill). The seed files carry those shapes by construction;
  // see the trace comment inside each file.
  const auto Seeds = loadSeedFiles(SYSTEC_SEED_DIR);
  auto Has = [&](const std::string &Name) {
    for (const auto &[File, S] : Seeds)
      if (File == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(Has("grouped-two-sparse.seed"))
      << "PR-2 regression seed missing";
  EXPECT_TRUE(Has("structured-fill-quantize.seed"))
      << "PR-3 regression seed missing";
}
