//===- tests/symmetry_test.cpp --------------------------------*- C++ -*-===//
///
/// Tests for permutations, partitions (Definitions 2.1-2.4), and
/// equivalence groups / unique symmetry groups (Definitions 4.1-4.2).
///
//===----------------------------------------------------------------------===//

#include "symmetry/EquivalenceGroup.h"
#include "symmetry/Partition.h"
#include "symmetry/Permutation.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

using namespace systec;

namespace {

uint64_t factorial(unsigned N) {
  uint64_t F = 1;
  for (unsigned K = 2; K <= N; ++K)
    F *= K;
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// Permutation
//===----------------------------------------------------------------------===//

TEST(Permutation, IdentityApply) {
  Permutation Id = Permutation::identity(3);
  std::vector<int> X{7, 8, 9};
  EXPECT_EQ(Id.apply(X), X);
  EXPECT_TRUE(Id.isIdentity());
}

TEST(Permutation, ApplyConvention) {
  // Paper Figure 5: sigma = (3,1,2) (one-based) maps (i,k,l) to (l,i,k).
  Permutation Sigma({2, 0, 1});
  std::vector<std::string> X{"i", "k", "l"};
  std::vector<std::string> Expect{"l", "i", "k"};
  EXPECT_EQ(Sigma.apply(X), Expect);
}

TEST(Permutation, ComposeMatchesSequentialApply) {
  Permutation A({1, 2, 0}), B({2, 1, 0});
  std::vector<int> X{10, 20, 30};
  EXPECT_EQ(A.compose(B).apply(X), A.apply(B.apply(X)));
}

TEST(Permutation, InverseRoundTrip) {
  for (const Permutation &P : allPermutations(4)) {
    std::vector<int> X{1, 2, 3, 4};
    EXPECT_EQ(P.inverse().apply(P.apply(X)), X);
    EXPECT_TRUE(P.compose(P.inverse()).isIdentity());
  }
}

TEST(Permutation, AllPermutationsCountAndUniqueness) {
  for (unsigned N = 1; N <= 5; ++N) {
    std::vector<Permutation> All = allPermutations(N);
    EXPECT_EQ(All.size(), factorial(N));
    std::set<std::string> Seen;
    for (const Permutation &P : All)
      Seen.insert(P.str());
    EXPECT_EQ(Seen.size(), All.size());
  }
}

TEST(Permutation, AllPermutationsIdentityFirst) {
  EXPECT_TRUE(allPermutations(4).front().isIdentity());
}

TEST(Permutation, Str) {
  EXPECT_EQ(Permutation({2, 0, 1}).str(), "(2,0,1)");
}

//===----------------------------------------------------------------------===//
// Partition
//===----------------------------------------------------------------------===//

TEST(Partition, NoneHasNoSymmetry) {
  Partition P = Partition::none(3);
  EXPECT_FALSE(P.hasSymmetry());
  EXPECT_EQ(P.parts().size(), 3u);
  EXPECT_EQ(P.symmetryOrder(), 1u);
}

TEST(Partition, FullIsOnePart) {
  Partition P = Partition::full(4);
  EXPECT_TRUE(P.hasSymmetry());
  EXPECT_TRUE(P.isFull());
  EXPECT_EQ(P.symmetryOrder(), 24u);
}

TEST(Partition, ParseExplicitParts) {
  Partition P = Partition::parse(4, "{0,1}{2,3}");
  EXPECT_EQ(P.parts().size(), 2u);
  EXPECT_TRUE(P.samePart(0, 1));
  EXPECT_TRUE(P.samePart(2, 3));
  EXPECT_FALSE(P.samePart(1, 2));
  EXPECT_EQ(P.symmetryOrder(), 4u);
}

TEST(Partition, ParseFillsSingletons) {
  Partition P = Partition::parse(4, "{1,3}");
  EXPECT_TRUE(P.samePart(1, 3));
  EXPECT_FALSE(P.samePart(0, 2));
  EXPECT_EQ(P.parts().size(), 3u);
}

TEST(Partition, PartOf) {
  Partition P = Partition::parse(3, "{0,2}");
  EXPECT_EQ(P.partOf(0), P.partOf(2));
  EXPECT_NE(P.partOf(0), P.partOf(1));
}

TEST(Partition, CanonicalDefinition) {
  // Definition 2.3: within a part, coordinates ascend.
  Partition P = Partition::full(3);
  EXPECT_TRUE(P.isCanonical({1, 2, 3}));
  EXPECT_TRUE(P.isCanonical({2, 2, 5}));
  EXPECT_FALSE(P.isCanonical({3, 2, 5}));
  EXPECT_FALSE(P.isCanonical({1, 4, 2}));
}

TEST(Partition, CanonicalPartial) {
  Partition P = Partition::parse(4, "{0,1}{2,3}");
  EXPECT_TRUE(P.isCanonical({1, 2, 9, 9}));
  EXPECT_TRUE(P.isCanonical({1, 2, 9, 3}) == false);
  // Cross-part ordering is unconstrained.
  EXPECT_TRUE(P.isCanonical({5, 6, 1, 2}));
}

TEST(Partition, CanonicalizeSortsWithinParts) {
  Partition P = Partition::parse(4, "{0,1}{2,3}");
  std::vector<int64_t> C{4, 1, 7, 2};
  std::vector<int64_t> Expect{1, 4, 2, 7};
  EXPECT_EQ(P.canonicalize(C), Expect);
}

TEST(Partition, CanonicalizeIsCanonical) {
  Partition P = Partition::full(4);
  EXPECT_TRUE(P.isCanonical(P.canonicalize({3, 1, 2, 1})));
}

TEST(Partition, DiagonalDetection) {
  // Definition 2.4.
  Partition P = Partition::full(3);
  EXPECT_TRUE(P.isOnDiagonal({1, 1, 2}));
  EXPECT_TRUE(P.isOnDiagonal({0, 2, 0}));
  EXPECT_FALSE(P.isOnDiagonal({0, 1, 2}));
}

TEST(Partition, DiagonalRespectsParts) {
  Partition P = Partition::parse(4, "{0,1}");
  EXPECT_TRUE(P.isOnDiagonal({3, 3, 1, 1}));
  // Equal coordinates in singleton parts are not a diagonal.
  EXPECT_FALSE(P.isOnDiagonal({1, 2, 5, 5}));
}

TEST(Partition, OrbitSizeOffDiagonal) {
  EXPECT_EQ(Partition::full(3).orbitSize({0, 1, 2}), 6u);
  EXPECT_EQ(Partition::full(5).orbitSize({0, 1, 2, 3, 4}), 120u);
}

TEST(Partition, OrbitSizeOnDiagonals) {
  Partition P = Partition::full(3);
  EXPECT_EQ(P.orbitSize({1, 1, 2}), 3u);  // 3!/2!
  EXPECT_EQ(P.orbitSize({2, 2, 2}), 1u);  // 3!/3!
}

TEST(Partition, OrbitSizePartial) {
  Partition P = Partition::parse(4, "{0,1}{2,3}");
  EXPECT_EQ(P.orbitSize({0, 1, 2, 3}), 4u);
  EXPECT_EQ(P.orbitSize({0, 0, 2, 3}), 2u);
  EXPECT_EQ(P.orbitSize({0, 0, 3, 3}), 1u);
}

TEST(Partition, StrFormat) {
  EXPECT_EQ(Partition::parse(3, "{0,2}").str(), "{0,2}{1}");
}

//===----------------------------------------------------------------------===//
// EquivalenceGroup
//===----------------------------------------------------------------------===//

TEST(EquivalenceGroup, EnumerateCount) {
  // Compositions of n: 2^(n-1) equivalence groups under the chain.
  for (unsigned N = 1; N <= 6; ++N)
    EXPECT_EQ(EquivalenceGroup::enumerate(N).size(), 1u << (N - 1));
}

TEST(EquivalenceGroup, EnumerateOffDiagonalFirst) {
  std::vector<EquivalenceGroup> All = EquivalenceGroup::enumerate(3);
  EXPECT_TRUE(All.front().isOffDiagonal());
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_FALSE(All[I].isOffDiagonal());
}

TEST(EquivalenceGroup, Mttkrp3Groups) {
  // Paper Section 4.3: {(i),(k),(l)}, {(i=k),(l)}, {(i),(k=l)},
  // {(i=k=l)}.
  std::vector<EquivalenceGroup> All = EquivalenceGroup::enumerate(3);
  ASSERT_EQ(All.size(), 4u);
  std::vector<std::string> Names{"i", "k", "l"};
  std::set<std::string> Strs;
  for (const EquivalenceGroup &G : All)
    Strs.insert(G.str(Names));
  EXPECT_TRUE(Strs.count("{(i),(k),(l)}"));
  EXPECT_TRUE(Strs.count("{(i=k),(l)}"));
  EXPECT_TRUE(Strs.count("{(i),(k=l)}"));
  EXPECT_TRUE(Strs.count("{(i=k=l)}"));
}

TEST(EquivalenceGroup, UniquePermutationCount) {
  // |S_P|E| = n! / prod(run!).
  EXPECT_EQ(EquivalenceGroup({1, 1, 1}).uniquePermutationCount(), 6u);
  EXPECT_EQ(EquivalenceGroup({2, 1}).uniquePermutationCount(), 3u);
  EXPECT_EQ(EquivalenceGroup({1, 2}).uniquePermutationCount(), 3u);
  EXPECT_EQ(EquivalenceGroup({3}).uniquePermutationCount(), 1u);
  EXPECT_EQ(EquivalenceGroup({2, 2}).uniquePermutationCount(), 6u);
  EXPECT_EQ(EquivalenceGroup({4}).uniquePermutationCount(), 1u);
}

TEST(EquivalenceGroup, UniquePermutationsMatchCount) {
  for (unsigned N = 2; N <= 5; ++N)
    for (const EquivalenceGroup &G : EquivalenceGroup::enumerate(N))
      EXPECT_EQ(G.uniquePermutations().size(), G.uniquePermutationCount());
}

TEST(EquivalenceGroup, UniquePermutationsPreserveRunOrder) {
  // Same-run elements keep their relative order in the image.
  EquivalenceGroup G({2, 2});
  for (const Permutation &P : G.uniquePermutations()) {
    Permutation Inv = P.inverse();
    EXPECT_LT(Inv[0], Inv[1]);
    EXPECT_LT(Inv[2], Inv[3]);
  }
}

TEST(EquivalenceGroup, UniquePermutationsAreTransversal) {
  // Applying run-stabilizer swaps to each representative covers S_n
  // exactly once: representatives x stabilizer = n!.
  EquivalenceGroup G({2, 1});
  std::vector<Permutation> Reps = G.uniquePermutations();
  std::set<std::string> Covered;
  for (const Permutation &R : Reps) {
    Covered.insert(R.str());
    // Swap the two same-run elements (0 and 1) in the image.
    std::vector<unsigned> Img(R.image());
    for (unsigned &V : Img)
      V = V == 0 ? 1 : (V == 1 ? 0 : V);
    Covered.insert(Permutation(Img).str());
  }
  EXPECT_EQ(Covered.size(), 6u);
}

TEST(EquivalenceGroup, RunQueries) {
  EquivalenceGroup G({2, 3});
  EXPECT_TRUE(G.sameRun(0, 1));
  EXPECT_TRUE(G.sameRun(2, 4));
  EXPECT_FALSE(G.sameRun(1, 2));
  EXPECT_EQ(G.representative(4), 2u);
  EXPECT_EQ(G.representative(1), 0u);
  EXPECT_EQ(G.runRange(1).first, 2u);
  EXPECT_EQ(G.runRange(1).second, 5u);
}

TEST(EquivalenceGroup, ClassifySorted) {
  EXPECT_EQ(EquivalenceGroup::classify({1, 2, 3}),
            EquivalenceGroup({1, 1, 1}));
  EXPECT_EQ(EquivalenceGroup::classify({2, 2, 3}),
            EquivalenceGroup({2, 1}));
  EXPECT_EQ(EquivalenceGroup::classify({4, 4, 4, 4}),
            EquivalenceGroup({4}));
}

TEST(EquivalenceGroup, StrWithNames) {
  EXPECT_EQ(EquivalenceGroup({2, 1}).str({"i", "k", "l"}), "{(i=k),(l)}");
}

/// Property sweep: the sum over equivalence groups of
/// |S_P|E| * (number of coordinate tuples in that group within the
/// canonical triangle) equals the full iteration space size.
class TriangleCoverage : public ::testing::TestWithParam<unsigned> {};

TEST_P(TriangleCoverage, GroupsPartitionCanonicalTriangle) {
  const unsigned N = GetParam();
  const int64_t Dim = 5;
  // Count canonical tuples per equivalence group.
  std::map<std::string, uint64_t> GroupCount;
  std::vector<int64_t> C(N, 0);
  uint64_t Canonical = 0;
  std::function<void(unsigned, int64_t)> Walk = [&](unsigned D,
                                                    int64_t Lo) {
    if (D == N) {
      ++Canonical;
      std::vector<unsigned> Runs;
      unsigned Len = 1;
      for (unsigned I = 1; I < N; ++I) {
        if (C[I] == C[I - 1])
          ++Len;
        else {
          Runs.push_back(Len);
          Len = 1;
        }
      }
      Runs.push_back(Len);
      ++GroupCount[EquivalenceGroup(Runs).str(
          std::vector<std::string>(N, "x"))];
      return;
    }
    for (C[D] = Lo; C[D] < Dim; ++C[D])
      Walk(D + 1, C[D]);
  };
  Walk(0, 0);

  // Total tuples reconstructed = sum over groups of count * |S_P|E|.
  uint64_t Reconstructed = 0;
  for (const EquivalenceGroup &G : EquivalenceGroup::enumerate(N)) {
    auto It = GroupCount.find(G.str(std::vector<std::string>(N, "x")));
    uint64_t Cnt = It == GroupCount.end() ? 0 : It->second;
    Reconstructed += Cnt * G.uniquePermutationCount();
  }
  uint64_t Full = 1;
  for (unsigned I = 0; I < N; ++I)
    Full *= Dim;
  EXPECT_EQ(Reconstructed, Full);
}

INSTANTIATE_TEST_SUITE_P(Orders, TriangleCoverage,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));
