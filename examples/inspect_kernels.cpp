//===- examples/inspect_kernels.cpp - Compiler inspection CLI -*- C++ -*-===//
///
/// \file
/// The analogue of the artifact's `julia run_SySTeC.jl`: compiles every
/// kernel from the paper's evaluation and prints the full compiler
/// report (analysis, symmetrized blocks, naive and optimized kernels).
/// Pass an einsum on the command line to compile something else, e.g.:
///
///   inspect_kernels "C[i,j] += A[i,k] * A[j,k]"
///   inspect_kernels "y[i] min= A[i,j] + d[j]" --sym A
///
/// --sym T marks tensor T fully symmetric; --nosplit etc. toggle passes.
///
//===----------------------------------------------------------------------===//

#include "core/Codegen.h"
#include "core/Compiler.h"
#include "kernels/Kernels.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace systec;

int main(int Argc, char **Argv) {
  if (Argc > 1 && Argv[1][0] != '-') {
    Einsum E = parseEinsum("cli", Argv[1]);
    PipelineOptions Options;
    bool EmitCppSource = false;
    for (int I = 2; I < Argc; ++I) {
      if (std::strcmp(Argv[I], "--emit-cpp") == 0) {
        EmitCppSource = true;
      } else if (std::strcmp(Argv[I], "--sym") == 0 && I + 1 < Argc) {
        const std::string Tensor = Argv[++I];
        TensorDecl &D = E.Decls.at(Tensor);
        D.Format = TensorFormat::csf(D.Order);
        D.Symmetry = Partition::full(D.Order);
      } else if (std::strcmp(Argv[I], "--nosplit") == 0) {
        Options.DiagonalSplit = false;
      } else if (std::strcmp(Argv[I], "--noworkspace") == 0) {
        Options.Workspace = false;
      } else if (std::strcmp(Argv[I], "--noconcordize") == 0) {
        Options.Concordize = false;
      } else {
        std::fprintf(stderr, "unknown option %s\n", Argv[I]);
        return 1;
      }
    }
    CompileResult R = compileEinsum(E, Options);
    std::printf("%s\n", R.report().c_str());
    if (EmitCppSource)
      std::printf("=== generated C++ ===\n%s\n",
                  emitCpp(R.Optimized).c_str());
    return 0;
  }

  std::vector<Einsum> Kernels{makeSsymv(), makeBellmanFord(), makeSyprd(),
                              makeSsyrk(), makeTtm(),         makeMttkrp(3),
                              makeMttkrp(4), makeMttkrp(5)};
  for (const Einsum &E : Kernels) {
    std::printf("#======================================================"
                "=====\n# %s\n#====================================="
                "======================\n",
                E.Name.c_str());
    std::printf("%s\n", compileEinsum(E).report().c_str());
  }
  return 0;
}
