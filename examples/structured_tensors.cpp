//===- examples/structured_tensors.cpp - Banded & RLE inputs --*- C++ -*-===//
///
/// \file
/// SySTeC targets "sparse or otherwise structured (Triangular, Banded,
/// Run-Length-Encoded) tensor operations" (paper contribution 1). This
/// example runs the same compiled symmetric kernel over one logical
/// matrix stored four ways — CSC, fully-compressed DCSC, banded, and
/// run-length encoded — and shows that results agree while the storage
/// footprints differ. The banded and RLE levels also act as loop
/// drivers, so iteration complexity follows the structure.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "runtime/Executor.h"

#include <cstdio>

using namespace systec;

int main() {
  const int64_t Dim = 2000;
  Rng Random(13);

  // A banded symmetric matrix: the run-length and banded formats shine
  // on this structure.
  TensorFormat Csc = TensorFormat::csf(2);
  Tensor Base = generateBandedSymmetric(Dim, 3, Random, Csc);

  struct Variant {
    const char *Name;
    TensorFormat Format;
  };
  TensorFormat Dcsc, Banded, Rle;
  Dcsc.Levels = {LevelKind::Sparse, LevelKind::Sparse};
  Banded.Levels = {LevelKind::Dense, LevelKind::Banded};
  Rle.Levels = {LevelKind::Dense, LevelKind::RunLength};
  std::vector<Variant> Variants{{"csc", Csc},
                                {"dcsc", Dcsc},
                                {"banded", Banded},
                                {"rle", Rle}};

  Tensor X = generateDenseVector(Dim, Random);
  std::vector<double> Reference;

  std::printf("SSYMV over one banded symmetric matrix in four "
              "formats (dim %lld, bandwidth 3):\n",
              static_cast<long long>(Dim));
  for (const Variant &V : Variants) {
    // Rebuild the same values in this format and recompile the kernel
    // with the matching declaration.
    Tensor A = Tensor::fromCoo(Base.toCoo(), V.Format);
    Einsum E = makeSsymv();
    E.declare("A", V.Format);
    E.setSymmetry("A", Partition::full(2));
    CompileResult R = compileEinsum(E);

    Tensor Y = Tensor::dense({Dim});
    Executor Exec(R.Optimized);
    Exec.bind("A", &A).bind("x", &X).bind("y", &Y);
    Exec.prepare();
    Exec.run();

    double Checksum = 0;
    for (double Val : Y.vals())
      Checksum += Val;
    if (Reference.empty())
      Reference = Y.vals();
    double MaxDiff = 0;
    for (size_t I = 0; I < Reference.size(); ++I)
      MaxDiff = std::max(MaxDiff, std::abs(Reference[I] - Y.vals()[I]));
    std::printf("  %-8s %-40s stored=%8zu  checksum=%14.6f  "
                "max-diff=%.2e\n",
                V.Name, V.Format.str().c_str(), A.storedCount(),
                Checksum, MaxDiff);
    if (MaxDiff > 1e-9) {
      std::printf("MISMATCH between formats!\n");
      return 1;
    }
  }
  std::printf("all formats agree; banded/RLE store per-structure, "
              "not per-nonzero\n");
  return 0;
}
