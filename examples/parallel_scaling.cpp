//===- examples/parallel_scaling.cpp - Parallel runtime demo --*- C++ -*-===//
///
/// \file
/// Demonstrates the parallel execution runtime: compiles SSYMV, shows
/// the parallelism analysis decision (the `// parallel` markers in the
/// generated C++), then runs the optimized kernel across thread counts
/// and schedule policies and reports timings and result agreement.
///
/// Build and run:
///   cmake -B build && cmake --build build --target example_parallel_scaling
///   ./build/example_parallel_scaling [dimension]
///
//===----------------------------------------------------------------------===//

#include "core/Codegen.h"
#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "runtime/Executor.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace systec;

int main(int Argc, char **Argv) {
  const int64_t N = Argc > 1 ? std::atoll(Argv[1]) : 20000;
  Rng R(42);
  Tensor A = generateSymmetricTensor(2, N, 8 * N, R, TensorFormat::csf(2));
  Tensor X = generateDenseVector(N, R);

  CompileResult C = compileEinsum(makeSsymv());
  std::printf("=== generated kernel (note the // parallel markers) ===\n%s\n",
              emitCpp(C.Optimized).c_str());

  Tensor Ref;
  double BaseMs = 0;
  std::printf("=== thread scaling on a %lld-dim symmetric matrix ===\n",
              static_cast<long long>(N));
  std::printf("%-8s %-10s %12s %10s %12s\n", "threads", "schedule", "ms",
              "speedup", "maxAbsDiff");
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    for (SchedulePolicy P : {SchedulePolicy::Static,
                             SchedulePolicy::TriangleBalanced}) {
      if (Threads == 1 && P != SchedulePolicy::Static)
        continue; // one lane: schedule is irrelevant
      Tensor Y = Tensor::dense({N});
      ExecOptions O;
      O.Threads = Threads;
      O.Schedule = P;
      Executor E(C.Optimized, O);
      E.bind("A", &A).bind("x", &X).bind("y", &Y);
      E.prepare();
      // Warm once (materializes splits, allocates accumulators).
      E.runBody();
      Y.setAllValues(0.0);
      auto T0 = std::chrono::steady_clock::now();
      E.run();
      double Ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
      if (Threads == 1) {
        BaseMs = Ms;
        Ref = Y;
      }
      std::printf("%-8u %-10s %12.3f %10.2f %12.3g\n", Threads,
                  schedulePolicyName(P), Ms, BaseMs / Ms,
                  Tensor::maxAbsDiff(Ref, Y));
    }
  }
  std::printf("\nReduction privatization keeps every configuration "
              "within rounding of the sequential result; speedups "
              "require actual cores (this machine reports %u).\n",
              std::thread::hardware_concurrency());
  return 0;
}
