//===- examples/graph_shortest_path.cpp - Min-plus Bellman-Ford -*- C++-*-===//
///
/// \file
/// Single-source shortest paths on an undirected weighted graph. The
/// adjacency matrix of an undirected graph is symmetric (paper Section
/// 1), and the Bellman-Ford relaxation y[i] min= A[i,j] + d[j] is a
/// tensor kernel over the (min,+) semiring — SySTeC symmetrizes it even
/// though it uses neither + nor * as the reduction (paper Section
/// 5.2.2). This example builds the einsum by hand (no kernel factory),
/// compiles it, and iterates relaxations to convergence, reading only
/// the upper triangle of the adjacency matrix in every step.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "runtime/Executor.h"
#include "support/Counters.h"

#include <cstdio>
#include <limits>

using namespace systec;

int main() {
  const double Inf = std::numeric_limits<double>::infinity();
  const int64_t NumNodes = 3000;

  // 1. Describe the relaxation step from scratch.
  Einsum Step = parseEinsum("relax", "y[i] min= A[i,j] + d[j]");
  Step.LoopOrder = {"j", "i"};
  Step.declare("A", TensorFormat::csf(2), /*Fill=*/Inf);
  Step.setSymmetry("A", Partition::full(2));
  Step.declare("d", TensorFormat::dense(1));
  Step.declare("y", TensorFormat::dense(1), Inf);

  CompileResult R = compileEinsum(Step);
  std::printf("optimized relaxation step:\n%s\n",
              R.Optimized.str().c_str());

  // 2. A random undirected graph: symmetric edge weights, fill = inf.
  Rng Random(99);
  Tensor Weights = generateSymmetricTensor(2, NumNodes, 4 * NumNodes,
                                           Random, TensorFormat::csf(2),
                                           Inf);

  // 3. Distances: source node 0.
  Tensor Dist = Tensor::dense({NumNodes}, Inf);
  Dist.setAllValues(Inf);
  Dist.denseRef({0}) = 0.0;
  Tensor Next = Tensor::dense({NumNodes}, Inf);

  Executor Exec(R.Optimized);
  Exec.bind("A", &Weights).bind("d", &Dist).bind("y", &Next);
  Exec.prepare();

  // 4. Relax until fixpoint (at most |V|-1 rounds).
  counters().reset();
  unsigned Rounds = 0;
  for (; Rounds < NumNodes - 1; ++Rounds) {
    // y starts from the current distances (self-paths).
    Next.vals() = Dist.vals();
    Exec.run();
    if (Next.vals() == Dist.vals())
      break;
    Dist.vals() = Next.vals();
  }

  unsigned Reached = 0;
  double MaxDist = 0;
  for (double V : Dist.vals())
    if (V < Inf) {
      ++Reached;
      MaxDist = std::max(MaxDist, V);
    }
  std::printf("converged after %u rounds\n", Rounds + 1);
  std::printf("reached %u of %lld nodes; eccentricity of source %.4f\n",
              Reached, static_cast<long long>(NumNodes), MaxDist);
  std::printf("edge reads per round (symmetric kernel): ~%llu of %zu "
              "stored\n",
              static_cast<unsigned long long>(counters().SparseReads /
                                              (Rounds + 1)),
              Weights.storedCount());
  return Reached > 0 ? 0 : 1;
}
