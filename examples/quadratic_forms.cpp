//===- examples/quadratic_forms.cpp - Statistics with SYPRD ---*- C++ -*-===//
///
/// \file
/// Quadratic forms x'Ax over symmetric matrices appear throughout
/// statistics — variances of linear combinations under a covariance
/// matrix, Mahalanobis-style distances, Rayleigh quotients (the paper's
/// Section 1 motivates symmetric tensors with exactly these). This
/// example builds a sparse symmetric "covariance-like" matrix, compiles
/// SYPRD once, and evaluates the quadratic form for a batch of
/// portfolio vectors, reading only the canonical triangle each time. A
/// power-method Rayleigh quotient estimates the dominant eigenvalue
/// using the same compiled kernel plus SSYMV.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "runtime/Executor.h"
#include "support/Counters.h"

#include <cmath>
#include <cstdio>

using namespace systec;

int main() {
  const int64_t Dim = 5000;
  Rng Random(7);

  // A sparse symmetric positive-ish matrix: banded correlations plus
  // random long-range terms (A + A' construction).
  Tensor Local = generateBandedSymmetric(Dim, 4, Random,
                                         TensorFormat::csf(2));
  Tensor Long = symmetrizeMatrix(generateSparseMatrix(
      Dim, Dim, 4 * Dim, Random, TensorFormat::csf(2)));
  Coo Sum(Local.dims());
  Local.forEach(
      [&Sum](const std::vector<int64_t> &C, double V) { Sum.add(C, V); });
  Long.forEach(
      [&Sum](const std::vector<int64_t> &C, double V) { Sum.add(C, V); });
  Tensor Sigma = Tensor::fromCoo(std::move(Sum), TensorFormat::csf(2));

  CompileResult Syprd = compileEinsum(makeSyprd());
  CompileResult Ssymv = compileEinsum(makeSsymv());

  Tensor X = generateDenseVector(Dim, Random);
  Tensor Scalar = Tensor::dense({1});
  Executor Quad(Syprd.Optimized);
  Quad.bind("A", &Sigma).bind("x", &X).bind("y", &Scalar);
  Quad.prepare();

  // Batch of quadratic forms: x is rewritten in place between runs;
  // the compiled kernel and its canonical-triangle splits are reused.
  std::printf("quadratic forms over a %lld-dimensional symmetric "
              "matrix (%zu stored entries):\n",
              static_cast<long long>(Dim), Sigma.storedCount());
  counters().reset();
  for (unsigned Trial = 0; Trial < 5; ++Trial) {
    for (double &V : X.vals())
      V = Random.nextDouble(-1.0, 1.0);
    Scalar.setAllValues(0.0);
    Quad.run();
    std::printf("  x_%u' A x_%u = %12.4f\n", Trial, Trial,
                Scalar.at({0}));
  }
  std::printf("canonical reads per evaluation: ~%llu of %zu\n",
              static_cast<unsigned long long>(counters().SparseReads / 5),
              Sigma.storedCount());

  // Rayleigh quotient power iteration with the SSYMV kernel.
  Tensor V = generateDenseVector(Dim, Random);
  Tensor W = Tensor::dense({Dim});
  Executor Mv(Ssymv.Optimized);
  Mv.bind("A", &Sigma).bind("x", &V).bind("y", &W);
  Mv.prepare();
  double Rayleigh = 0;
  for (unsigned It = 0; It < 30; ++It) {
    W.setAllValues(0.0);
    Mv.run();
    double Norm = 0;
    for (double Val : W.vals())
      Norm += Val * Val;
    Norm = std::sqrt(Norm);
    for (int64_t I = 0; I < Dim; ++I)
      V.denseRef({I}) = W.at({I}) / Norm;
    // Rayleigh quotient via the SYPRD kernel on the current vector.
    Executor Rq(Syprd.Optimized);
    Rq.bind("A", &Sigma).bind("x", &V).bind("y", &Scalar);
    Rq.prepare();
    Scalar.setAllValues(0.0);
    Rq.run();
    Rayleigh = Scalar.at({0});
  }
  std::printf("dominant eigenvalue estimate (Rayleigh quotient): %.6f\n",
              Rayleigh);
  return std::isfinite(Rayleigh) ? 0 : 1;
}
