//===- examples/quickstart.cpp - SySTeC in five minutes -------*- C++ -*-===//
///
/// \file
/// Quickstart: compile the sparse symmetric matrix-vector product
/// (SSYMV), inspect the generated kernels, run both the naive and the
/// symmetry-optimized version over a random symmetric matrix, and check
/// that they agree while the optimized kernel reads only the canonical
/// triangle.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "runtime/Executor.h"
#include "support/Counters.h"

#include <cstdio>

using namespace systec;

int main() {
  // 1. Describe the kernel: y[i] += A[i,j] * x[j] with A symmetric.
  //    makeSsymv() bundles the paper's formats (A in CSC) and loop
  //    order; building an Einsum by hand takes four lines — see
  //    examples/graph_shortest_path.cpp.
  Einsum E = makeSsymv();

  // 2. Compile. The result holds the naive baseline and the
  //    symmetry-optimized kernel plus all intermediate artifacts.
  CompileResult R = compileEinsum(E);
  std::printf("%s\n", R.report().c_str());

  // 3. Build a workload: a 2000x2000 symmetric sparse matrix with
  //    ~40000 stored entries, and a dense input vector.
  Rng Random(42);
  Tensor A = generateSymmetricTensor(2, 2000, 20000, Random,
                                     TensorFormat::csf(2));
  Tensor X = generateDenseVector(2000, Random);
  Tensor YNaive = Tensor::dense({2000});
  Tensor YOpt = Tensor::dense({2000});

  // 4. Run the naive kernel.
  counters().reset();
  Executor Naive(R.Naive);
  Naive.bind("A", &A).bind("x", &X).bind("y", &YNaive);
  Naive.prepare();
  Naive.run();
  uint64_t NaiveReads = counters().SparseReads;

  // 5. Run the optimized kernel (reads only the upper triangle and
  //    performs both updates per read).
  counters().reset();
  Executor Opt(R.Optimized);
  Opt.bind("A", &A).bind("x", &X).bind("y", &YOpt);
  Opt.prepare();
  Opt.run();
  uint64_t OptReads = counters().SparseReads;

  double Diff = Tensor::maxAbsDiff(YNaive, YOpt);
  std::printf("naive reads of A:     %llu\n",
              static_cast<unsigned long long>(NaiveReads));
  std::printf("optimized reads of A: %llu  (expect about half)\n",
              static_cast<unsigned long long>(OptReads));
  std::printf("max |y_naive - y_opt|: %.3e\n", Diff);

  // 6. The recoverable error surface (docs/ROBUSTNESS.md): anything
  //    malformed that comes from *client input* is a typed Status, not
  //    an abort. A COO entry outside the declared extent:
  Coo Bad({3, 3});
  Bad.add({2, 5}, 1.0); // column 5 in a 3x3 matrix
  Expected<Tensor> Rejected = Tensor::tryFromCoo(std::move(Bad),
                                                 TensorFormat::csf(2));
  std::printf("malformed COO -> %s\n", Rejected.status().str().c_str());

  // 7. Cooperative cancellation: a pre-cancelled token makes the run
  //    abort deterministically with ErrCode::Cancelled before any
  //    output is written; the token is reusable after reset().
  CancelToken Stop;
  Stop.cancel();
  ExecOptions Opts;
  Opts.Cancel = &Stop;
  Tensor YCancelled = Tensor::dense({2000});
  Executor Cancelled(R.Optimized, Opts);
  Cancelled.bind("A", &A).bind("x", &X).bind("y", &YCancelled);
  Status Prep = Cancelled.tryPrepare();
  Status Run = Prep.ok() ? Cancelled.tryRun() : Status::success();
  std::printf("cancelled run  -> %s (abort reason: %s)\n",
              Run.str().c_str(),
              Cancelled.lastReport().AbortReason.c_str());

  const bool RobustnessOk = !Rejected.ok() &&
                            Rejected.status().code() ==
                                ErrCode::InvalidArgument &&
                            Prep.ok() && !Run.ok() &&
                            Run.code() == ErrCode::Cancelled;
  return Diff < 1e-9 && RobustnessOk ? 0 : 1;
}
