//===- examples/symmetric_cpd.cpp - Symmetric CP decomposition -*- C++ -*-===//
///
/// \file
/// One of the paper's motivating applications (Section 5.2.6): the
/// symmetric canonical polyadic decomposition. For a symmetric tensor
/// the CPD uses a single factor matrix for all modes, so each ALS-style
/// sweep needs only one MTTKRP instead of N transposed ones — and the
/// symmetric MTTKRP that SySTeC generates reads only 1/n! of the
/// tensor. This example runs a fixed-point iteration of
///
///     B <- normalize( MTTKRP(A, B) )
///
/// to approximate the dominant rank-1 symmetric component of a random
/// symmetric 3-d tensor (the higher-order power method of Kofidis &
/// Regalia, the paper's [20]).
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "data/Generators.h"
#include "kernels/Kernels.h"
#include "runtime/Executor.h"

#include <cmath>
#include <cstdio>

using namespace systec;

namespace {

/// Frobenius norm of a dense matrix column.
double columnNorm(const Tensor &M, int64_t Col) {
  double S = 0;
  for (int64_t I = 0; I < M.dim(0); ++I) {
    double V = M.at({I, Col});
    S += V * V;
  }
  return std::sqrt(S);
}

} // namespace

int main() {
  const int64_t Dim = 120;
  const int64_t Rank = 4;
  Rng Random(2025);

  CompileResult R = compileEinsum(makeMttkrp(3));
  std::printf("symmetric MTTKRP kernel used for the CPD sweep:\n%s\n",
              R.Optimized.str().c_str());

  Tensor A = generateSymmetricTensor(3, Dim, 4000, Random,
                                     TensorFormat::csf(3));
  Tensor B = generateDenseMatrix(Dim, Rank, Random);
  Tensor C = Tensor::dense({Dim, Rank});

  // Higher-order power iterations. Because B changes every sweep, the
  // concordized alias B_T must be refreshed: we re-prepare a fresh
  // executor per sweep (transposition is cheap data preparation, not
  // kernel time).
  double Lambda = 0;
  for (unsigned Sweep = 0; Sweep < 12; ++Sweep) {
    Executor Step(R.Optimized);
    Step.bind("A", &A).bind("B", &B).bind("C", &C);
    Step.prepare();
    C.setAllValues(0.0);
    Step.run();
    // Normalize each column; the norms approximate component weights.
    Lambda = 0;
    for (int64_t Col = 0; Col < Rank; ++Col) {
      double Norm = columnNorm(C, Col);
      Lambda = std::max(Lambda, Norm);
      if (Norm == 0)
        continue;
      for (int64_t I = 0; I < Dim; ++I)
        B.denseRef({I, Col}) = C.at({I, Col}) / Norm;
    }
    std::printf("sweep %2u: dominant component weight %.6f\n", Sweep,
                Lambda);
  }

  // Report the rank-1 reconstruction quality of the dominant column.
  double Num = 0, Den = 0;
  A.forEach([&](const std::vector<int64_t> &Coord, double V) {
    double Approx = Lambda;
    for (int64_t M : Coord)
      Approx *= B.at({M, 0});
    Num += (V - Approx) * (V - Approx);
    Den += V * V;
  });
  std::printf("relative residual of dominant rank-1 term: %.4f\n",
              std::sqrt(Num / Den));
  return Lambda > 0 ? 0 : 1;
}
